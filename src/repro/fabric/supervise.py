"""Worker-pool supervision: heartbeats, watchdogs, retries, circuit breaking.

:class:`PoolSupervisor` is the generic half of what used to be the pool
loop inside :func:`repro.harness.parallel.run_tasks`: it owns a process
pool, watches every in-flight future against a per-task watchdog deadline,
retries failures with deterministic exponential backoff
(:func:`repro.errors.backoff_delay`), and classifies each task's fate so
the *caller* decides what degradation means:

``ok``
    The task's callable returned; ``value`` holds the result.
``fatal``
    The task raised a **non-retryable** :class:`~repro.errors.ReproError`
    — a deterministic model/configuration error that would fail
    identically on every attempt.  Failing fast here is the point:
    retrying it would only burn the watchdog budget.
``gave_up``
    Worker crashes exhausted the retry budget, or the pool's circuit
    breaker opened (repeated worker deaths / a broken executor).  The
    task is *safe to re-run serially in the parent* — that is exactly
    what both the figure harness and the fabric engine do.
``timeout``
    The task kept exceeding the watchdog.  **Not** safe to re-run in the
    parent: a hanging task would hang the parent and defeat the watchdog.

The circuit breaker guards the degrade path: once ``circuit_threshold``
broken-executor events accumulate (or a submission itself fails), the
supervisor stops feeding the pool and marks all remaining tasks
``gave_up`` instead of grinding through a dead pool one timeout at a
time.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import CircuitOpenError, backoff_delay, is_retryable
from repro.telemetry import events as _events
from repro.telemetry import get_logger
from repro.telemetry import registry as _telemetry

logger = get_logger(__name__)


# ----------------------------------------------------------------------
# Supervision knobs (explicit argument > environment > default)
# ----------------------------------------------------------------------
def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_JOBS`` env > 1."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            logger.warning("ignoring non-integer REPRO_JOBS=%r", env)
    return 1


def _env_number(name: str, cast, floor):
    value = os.environ.get(name)
    if not value:
        return None
    try:
        return max(floor, cast(value))
    except ValueError:
        logger.warning("ignoring non-numeric %s=%r", name, value)
        return None


def resolve_task_timeout(task_timeout: Optional[float] = None
                         ) -> Optional[float]:
    """Watchdog seconds: explicit > ``REPRO_TASK_TIMEOUT`` env > off."""
    if task_timeout is not None:
        return task_timeout if task_timeout > 0 else None
    return _env_number("REPRO_TASK_TIMEOUT", float, 0.001)


def resolve_retries(retries: Optional[int] = None) -> int:
    """In-pool retry budget: explicit > ``REPRO_TASK_RETRIES`` env > 1."""
    if retries is not None:
        return max(0, int(retries))
    env = _env_number("REPRO_TASK_RETRIES", int, 0)
    return 1 if env is None else env


@dataclass
class TaskOutcome:
    """What became of one supervised task."""

    status: str                      # ok | fatal | gave_up | timeout
    value: object = None
    error: Optional[BaseException] = None
    attempts: int = 1
    #: Wall seconds from first submission to the final verdict.
    elapsed: float = 0.0
    #: Wall-clock (``time.time``) start stamp of each attempt.
    attempt_times: Tuple[float, ...] = ()


@dataclass
class _InFlight:
    key: object
    attempt: int
    deadline: Optional[float]


class _CallbackError(BaseException):
    """Wrapper that carries an ``on_ok`` exception past the degrade-to-
    serial handler: a driver aborting on purpose (checkpoint-and-interrupt)
    must not be mistaken for pool breakage."""

    def __init__(self, error: BaseException):
        super().__init__()
        self.error = error


def abandon_pool(pool):
    """Best-effort teardown of a pool with hung workers, so exiting the
    ``with`` block (which joins workers) cannot hang the parent."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:
        try:
            pool.shutdown(wait=False)
        except Exception:
            pass
    except Exception:
        pass
    processes = getattr(pool, "_processes", None)
    if processes:
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:
                pass


class PoolSupervisor:
    """Run a batch of independent calls under pool supervision.

    ``specs`` (see :meth:`run`) maps an opaque task key to a *call spec*:
    ``spec(attempt) -> (fn, args)`` where ``fn`` is a picklable top-level
    callable.  The attempt number is passed through so callers can thread
    it into the worker (the chaos harness keys injections on it).

    ``counter_prefix`` names the telemetry family (``harness`` for the
    figure harness, ``fabric`` for the engine) so existing counter names
    stay stable.
    """

    def __init__(self, jobs: int, *,
                 task_timeout: Optional[float] = None,
                 retries: int = 1,
                 backoff_base: float = 0.5,
                 executor_factory: Optional[Callable] = None,
                 label_of: Callable[[object], str] = str,
                 counter_prefix: str = "fabric",
                 circuit_threshold: int = 3,
                 sleep: Callable[[float], None] = time.sleep):
        self.jobs = max(1, int(jobs))
        self.task_timeout = task_timeout
        self.retries = max(0, int(retries))
        self.backoff_base = backoff_base
        self.executor_factory = executor_factory or (
            lambda: ProcessPoolExecutor(max_workers=self.jobs))
        self.label_of = label_of
        self.prefix = counter_prefix
        self.circuit_threshold = max(1, int(circuit_threshold))
        self.sleep = sleep

    # ------------------------------------------------------------------
    def run(self, specs: Dict[object, Callable[[int], Tuple[Callable,
                                                            tuple]]],
            on_ok: Optional[Callable[[object, object], None]] = None
            ) -> Dict[object, TaskOutcome]:
        """Supervise every spec to a verdict; never raises for task
        failures (the outcome's ``status``/``error`` carry them).

        ``on_ok(key, value)`` streams successes as they land — the fabric
        engine uses it for progress callbacks and checkpoint ticks.
        """
        outcomes: Dict[object, TaskOutcome] = {}
        first_start: Dict[object, float] = {}
        attempt_log: Dict[object, List[float]] = {}
        broken_events = 0
        busy_seconds = 0.0
        pool_t0 = time.monotonic()

        def begin_attempt(key):
            attempt_log.setdefault(key, []).append(time.time())
            first_start.setdefault(key, time.monotonic())

        def settle(key, status, attempt, value=None, error=None):
            start = first_start.get(key)
            elapsed = time.monotonic() - start if start is not None else 0.0
            outcomes[key] = TaskOutcome(
                status=status, value=value, error=error, attempts=attempt,
                elapsed=elapsed,
                attempt_times=tuple(attempt_log.get(key, ())),
            )
            return outcomes[key]

        try:
            with self.executor_factory() as pool:
                pending = {}          # future -> _InFlight
                hung = False

                def submit(key, attempt):
                    begin_attempt(key)
                    fn, args = specs[key](attempt)
                    future = pool.submit(fn, *args)
                    deadline = (time.monotonic() + self.task_timeout
                                if self.task_timeout else None)
                    pending[future] = _InFlight(key, attempt, deadline)

                for key in specs:
                    submit(key, 1)

                while pending:
                    wait_for = None
                    deadlines = [f.deadline for f in pending.values()
                                 if f.deadline is not None]
                    if deadlines:
                        wait_for = max(0.0,
                                       min(deadlines) - time.monotonic())
                    done, _ = wait(set(pending), timeout=wait_for,
                                   return_when=FIRST_COMPLETED)
                    for future in done:
                        flight = pending.pop(future)
                        key, attempt = flight.key, flight.attempt
                        try:
                            value = future.result()
                        except Exception as exc:
                            if isinstance(exc, BrokenExecutor):
                                broken_events += 1
                                if broken_events >= self.circuit_threshold:
                                    raise CircuitOpenError(
                                        f"worker pool broke "
                                        f"{broken_events} times; opening "
                                        "the circuit"
                                    ) from exc
                            if not is_retryable(exc):
                                _events.event(
                                    "task_fatal", task=self.label_of(key),
                                    error=type(exc).__name__)
                                logger.warning(
                                    "task %s failed with non-retryable %s: "
                                    "%s; failing fast (no retries)",
                                    self.label_of(key), type(exc).__name__,
                                    exc,
                                )
                                settle(key, "fatal", attempt, error=exc)
                                continue
                            if attempt <= self.retries:
                                _telemetry.counter(
                                    f"{self.prefix}.retries").inc()
                                _events.event(
                                    "task_retry", task=self.label_of(key),
                                    attempt=attempt + 1,
                                    error=type(exc).__name__)
                                logger.warning(
                                    "worker for %s failed (%s: %s); "
                                    "retrying (attempt %d of %d)",
                                    self.label_of(key), type(exc).__name__,
                                    exc, attempt + 1, self.retries + 1,
                                )
                                self.sleep(backoff_delay(
                                    attempt, base=self.backoff_base,
                                    key=self.label_of(key)))
                                submit(key, attempt + 1)
                            else:
                                logger.warning(
                                    "worker for %s failed (%s: %s); "
                                    "falling back to serial execution",
                                    self.label_of(key), type(exc).__name__,
                                    exc,
                                )
                                settle(key, "gave_up", attempt, error=exc)
                            continue
                        settle(key, "ok", attempt, value=value)
                        busy_seconds += outcomes[key].elapsed
                        if on_ok is not None:
                            try:
                                on_ok(key, value)
                            except BaseException as exc:
                                raise _CallbackError(exc)
                    now = time.monotonic()
                    for future in list(pending):
                        flight = pending[future]
                        if flight.deadline is None or now < flight.deadline:
                            continue
                        del pending[future]
                        future.cancel()
                        key, attempt = flight.key, flight.attempt
                        _telemetry.counter(
                            f"{self.prefix}.timeouts").inc()
                        if attempt <= self.retries:
                            _telemetry.counter(
                                f"{self.prefix}.retries").inc()
                            _events.event(
                                "task_retry", task=self.label_of(key),
                                attempt=attempt + 1, error="timeout")
                            logger.warning(
                                "task %s exceeded its %.3gs watchdog; "
                                "retrying (attempt %d of %d)",
                                self.label_of(key), self.task_timeout,
                                attempt + 1, self.retries + 1,
                            )
                            submit(key, attempt + 1)
                        else:
                            settle(key, "timeout", attempt)
                            hung = True
                            logger.warning(
                                "task %s exceeded its %.3gs watchdog "
                                "after %d attempts; skipping it",
                                self.label_of(key), self.task_timeout,
                                attempt,
                            )
                if hung:
                    abandon_pool(pool)
        except _CallbackError as wrapped:
            raise wrapped.error
        except Exception as exc:
            # The pool itself broke (circuit opened, fork failure,
            # submission into a dead pool): everything unresolved degrades
            # to the caller's serial path rather than losing the run.
            _telemetry.counter(f"{self.prefix}.circuit_open").inc()
            logger.warning(
                "process pool failed (%s: %s); completing serially",
                type(exc).__name__, exc,
            )
            for key in specs:
                if key not in outcomes:
                    attempts = len(attempt_log.get(key, ())) or 1
                    settle(key, "gave_up", attempts, error=exc)

        wall = time.monotonic() - pool_t0
        if wall > 0 and busy_seconds > 0:
            _telemetry.gauge(f"{self.prefix}.worker_utilization").set(
                round(min(1.0, busy_seconds / (wall * self.jobs)), 4)
            )
        return outcomes
