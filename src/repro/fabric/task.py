"""Content-addressed task recipes for the execution fabric.

A fabric task is a *recipe reference*: the dotted name of a registered,
deterministic function plus a JSON-canonical parameter dict.  Nothing
heavyweight crosses a process boundary — workers re-import the recipe's
module (which re-registers the recipe) and rebuild whatever state the
parameters describe, the same trick :class:`repro.harness.parallel
.TraceTask` uses for figure tasks.

Because the recipe name and parameters *completely determine* the result,
the pair also serves as the task's identity: :func:`task_key` digests them
into a :class:`TaskKey`, generalizing the trace cache's
``production_signature`` keying.  Two campaigns that plan the same subtask
— a 30-fault and a 45-fault campaign over the same seed, two verify
sweeps sharing a (benchmark, oracle) cell — produce the same key and
dedupe against one shared artifact store.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import FabricError
from repro.telemetry import registry as _tm_registry
from repro.telemetry import tracing as _tracing

#: Bump when task-key semantics change; baked into every digest so stale
#: store entries silently miss instead of serving wrong-schema payloads.
KEY_SCHEMA = 1


def canonical_params(params: dict) -> str:
    """The JSON-canonical form of a parameter dict (sorted, no spaces).

    Raises :class:`~repro.errors.FabricError` for parameters JSON cannot
    express — task identity must never depend on ``repr`` of arbitrary
    objects.
    """
    try:
        return json.dumps(params, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise FabricError(
            f"task parameters are not JSON-canonical: {exc}"
        ) from exc


def task_key(recipe: str, params: dict) -> str:
    """Content address of one task: sha256 over (schema, recipe, params)."""
    h = hashlib.sha256()
    h.update(f"fabric-key-schema={KEY_SCHEMA}\n".encode())
    h.update(recipe.encode())
    h.update(b"\n")
    h.update(canonical_params(params).encode())
    return h.hexdigest()


@dataclass(frozen=True)
class Task:
    """One unit of fabric work.

    ``task_id`` is the driver-visible label (``f0011``, ``gzip:roundtrip``)
    used in checkpoints, progress callbacks, and reports; ``key`` is the
    content address used by the artifact store.  Both are deterministic.
    """

    recipe: str
    params: dict = field(compare=False)
    task_id: str = ""
    key: str = field(default="", compare=False)

    def __post_init__(self):
        if not self.task_id:
            object.__setattr__(self, "task_id", task_key(self.recipe,
                                                         self.params)[:16])
        if not self.key:
            object.__setattr__(self, "key", task_key(self.recipe,
                                                     self.params))

    def __hash__(self):
        return hash((self.recipe, self.task_id, self.key))


# ----------------------------------------------------------------------
# Recipe registry
# ----------------------------------------------------------------------
#: name -> (fn(params) -> result, batch_fn([params, ...]) -> [result] | None)
_RECIPES: Dict[str, Tuple[Callable, Optional[Callable]]] = {}


def register_recipe(name: str, fn: Callable,
                    batch_fn: Optional[Callable] = None):
    """Register a deterministic recipe under a dotted name.

    ``name`` must be ``"<module>:<label>"`` — workers import ``<module>``
    to trigger registration, so recipes must be registered at module
    import time.  ``fn(params)`` computes one result (a picklable,
    JSON-compatible value); the optional ``batch_fn(params_list)`` computes
    a whole wave at once and must return exactly ``fn``'s results, in
    order (the faults driver uses this for cohort-stepped waves).
    """
    if ":" not in name:
        raise FabricError(
            f"recipe name {name!r} must be '<module>:<label>' so workers "
            "can import its defining module"
        )
    _RECIPES[name] = (fn, batch_fn)
    return fn


def recipe(name: str, batch_fn: Optional[Callable] = None):
    """Decorator form of :func:`register_recipe`."""

    def wrap(fn):
        return register_recipe(name, fn, batch_fn)

    return wrap


def get_recipe(name: str) -> Tuple[Callable, Optional[Callable]]:
    """Resolve a recipe, importing its defining module if needed."""
    entry = _RECIPES.get(name)
    if entry is None:
        module = name.split(":", 1)[0]
        try:
            importlib.import_module(module)
        except ImportError as exc:
            raise FabricError(
                f"cannot import module {module!r} for recipe {name!r}: "
                f"{exc}"
            ) from exc
        entry = _RECIPES.get(name)
    if entry is None:
        raise FabricError(f"unknown recipe {name!r} (module imported but "
                          "nothing registered under that name)")
    return entry


def execute_task(recipe_name: str, params: dict, task_id: str = "",
                 attempt: int = 1, chaos=None, trace=None):
    """Top-level (picklable) worker entry point: run one task.

    ``chaos`` is an optional :class:`repro.fabric.chaos.ChaosPlan`; its
    injections fire *before* the recipe runs so a retried attempt
    recomputes the genuine result.

    ``trace`` is an optional propagated trace context (see
    :mod:`repro.telemetry.tracing`).  When present and tracing is enabled
    in this process, the task runs under a ``fabric.task`` child span of
    the submitting driver's context, and the return value is a *trace
    envelope* bundling the bare result with the worker's span records and
    a telemetry registry delta.  The engine unwraps the envelope before
    the result reaches any store, checkpoint, or report — persisted bytes
    are identical with tracing on or off.  A worker that dies mid-task
    never returns the envelope; the parent synthesizes a truncated span.
    """
    if trace is not None and _tracing.enabled():
        with _tracing.remote_session(trace) as session:
            before = (_tm_registry.snapshot()
                      if _tm_registry.enabled() else None)
            with _tracing.remote_span("fabric.task", task=task_id,
                                      attempt=attempt):
                if chaos is not None:
                    chaos.perturb(task_id, attempt)
                fn, _ = get_recipe(recipe_name)
                result = fn(params)
            metrics = {}
            if before is not None:
                metrics = _tm_registry.snapshot_delta(
                    before, _tm_registry.snapshot())
            return _tracing.wrap_result(result, session, metrics)
    if chaos is not None:
        chaos.perturb(task_id, attempt)
    fn, _ = get_recipe(recipe_name)
    return fn(params)
