"""repro.fabric — crash-tolerant, dedupe-aware execution fabric.

One work-queue behind every campaign driver: content-addressed tasks over
deterministic recipes (:mod:`~repro.fabric.task`), an atomic
quarantine-and-recompute artifact store (:mod:`~repro.fabric.store`), a
unified schema-versioned checkpoint (:mod:`~repro.fabric.checkpoint`),
pool supervision with watchdogs/backoff/circuit breaking
(:mod:`~repro.fabric.supervise`), the engine tying them together
(:mod:`~repro.fabric.engine`), and a deterministic fault injector for
torturing all of the above (:mod:`~repro.fabric.chaos`).

See ``docs/fabric.md`` for the architecture and the ``REPRO_FABRIC_*``
knob table.
"""

from repro.fabric.chaos import ChaosPlan, bitflip_file, truncate_file
from repro.fabric.checkpoint import (
    load_checkpoint,
    read_checkpoint_header,
    write_checkpoint,
)
from repro.fabric.engine import Fabric
from repro.fabric.store import ArtifactStore, default_store_root, resolve_store
from repro.fabric.supervise import PoolSupervisor, TaskOutcome
from repro.fabric.task import (
    Task,
    execute_task,
    get_recipe,
    recipe,
    register_recipe,
    task_key,
)

__all__ = [
    "ArtifactStore",
    "ChaosPlan",
    "Fabric",
    "PoolSupervisor",
    "Task",
    "TaskOutcome",
    "bitflip_file",
    "default_store_root",
    "execute_task",
    "get_recipe",
    "load_checkpoint",
    "read_checkpoint_header",
    "recipe",
    "register_recipe",
    "resolve_store",
    "task_key",
    "truncate_file",
    "write_checkpoint",
]
