"""The fabric engine: one crash-tolerant work-queue for every campaign.

:class:`Fabric` is what the faults, verify, and figure drivers now share
instead of three hand-rolled pool loops.  A driver hands it a list of
content-addressed :class:`~repro.fabric.task.Task`\\ s plus its config
fingerprint; the engine owns everything between "planned" and "in the
report":

1. **Duplicate coalescing** — a task delivered twice (driver bug, chaos
   injection) executes once; the first result wins
   (``fabric.duplicates``).
2. **Global resume** — completed results load from one schema-versioned
   checkpoint (:mod:`repro.fabric.checkpoint`) that works across executor
   kinds: checkpoint under a pool, resume serially, same report bytes.
3. **Cross-campaign dedupe** — with an artifact store enabled
   (``REPRO_FABRIC_STORE``), results land keyed by content address, so a
   later campaign that plans the same subtask reuses it
   (``fabric.dedupe.hits``).
4. **Supervised execution** — with ``jobs > 1`` the remaining tasks run
   under :class:`~repro.fabric.supervise.PoolSupervisor` (watchdogs,
   deterministic exponential backoff, circuit breaking); tasks the pool
   gives up on degrade to serial in-parent execution
   (``fabric.degradations``) so campaigns always complete.  Non-retryable
   errors fail fast; exhausted watchdogs raise *after* checkpointing, so
   nothing already computed is lost.
5. **Checkpoint ticks** — every ``checkpoint_every`` fresh results, and
   on *any* exception (including a driver's deliberate interruption from
   its progress callback), the checkpoint is written before the error
   propagates.

Fresh results stream to the driver's ``on_result`` callback in completion
order; restored results do not (drivers print progress only for new
work).  Reports stay deterministic because drivers build them from the
full result table, sorted — never from arrival order.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import TaskTimeoutError, backoff_delay, is_retryable
from repro.fabric.checkpoint import load_checkpoint, write_checkpoint
from repro.fabric.store import resolve_store
from repro.fabric.supervise import (
    PoolSupervisor,
    _env_number,
    resolve_jobs,
    resolve_retries,
    resolve_task_timeout,
)
from repro.fabric.task import Task, execute_task, get_recipe
from repro.sim.batch import resolve_batch
from repro.telemetry import events as _events
from repro.telemetry import get_logger
from repro.telemetry import registry as _telemetry
from repro.telemetry import tracing as _tracing

logger = get_logger(__name__)


def resolve_fabric_timeout(task_timeout: Optional[float] = None
                           ) -> Optional[float]:
    """Watchdog seconds: explicit > ``REPRO_FABRIC_TIMEOUT`` >
    ``REPRO_TASK_TIMEOUT`` > off."""
    if task_timeout is not None:
        return task_timeout if task_timeout > 0 else None
    env = _env_number("REPRO_FABRIC_TIMEOUT", float, 0.001)
    return env if env is not None else resolve_task_timeout(None)


def resolve_fabric_retries(retries: Optional[int] = None) -> int:
    """Retry budget: explicit > ``REPRO_FABRIC_RETRIES`` >
    ``REPRO_TASK_RETRIES`` > 1."""
    if retries is not None:
        return max(0, int(retries))
    env = _env_number("REPRO_FABRIC_RETRIES", int, 0)
    return env if env is not None else resolve_retries(None)


def resolve_fabric_backoff(backoff: Optional[float] = None) -> float:
    """Backoff base seconds: explicit > ``REPRO_FABRIC_BACKOFF`` > 0.5."""
    if backoff is not None:
        return backoff
    env = _env_number("REPRO_FABRIC_BACKOFF", float, 0.0)
    return 0.5 if env is None else env


def resolve_circuit_threshold(threshold: Optional[int] = None) -> int:
    """Circuit-breaker trip count: explicit > ``REPRO_FABRIC_CIRCUIT`` > 3."""
    if threshold is not None:
        return max(1, int(threshold))
    env = _env_number("REPRO_FABRIC_CIRCUIT", int, 1)
    return 3 if env is None else env


class Fabric:
    """A configured execution fabric for one driver run.

    ``driver`` and ``fingerprint`` identify the run for checkpoint
    matching; every other knob resolves explicit argument > environment >
    default (see the ``resolve_fabric_*`` helpers and
    :func:`~repro.harness.parallel.resolve_jobs`).
    """

    def __init__(self, driver: str, fingerprint: Dict[str, object], *,
                 store="auto",
                 checkpoint_path: Optional[str] = None,
                 resume: bool = False,
                 jobs: Optional[int] = None,
                 task_timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 backoff: Optional[float] = None,
                 checkpoint_every: int = 25,
                 chaos=None,
                 executor_factory: Optional[Callable] = None,
                 circuit_threshold: Optional[int] = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.driver = driver
        self.fingerprint = fingerprint
        self.store = resolve_store(store)
        self.checkpoint_path = checkpoint_path
        self.resume = resume
        self.jobs = resolve_jobs(jobs)
        self.task_timeout = resolve_fabric_timeout(task_timeout)
        self.retries = resolve_fabric_retries(retries)
        self.backoff = resolve_fabric_backoff(backoff)
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.chaos = chaos
        self.executor_factory = executor_factory
        self.circuit_threshold = resolve_circuit_threshold(circuit_threshold)
        self.sleep = sleep

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task],
            on_result: Optional[Callable[[str, object, int, int],
                                         None]] = None,
            batch: Optional[int] = None) -> Dict[str, object]:
        """Drive every task to a result; returns ``{task_id: result}``.

        ``on_result(task_id, result, done, total)`` fires once per *fresh*
        result (computed or dedupe-served; never for checkpoint-restored
        ones); ``done`` counts every completed task including restored
        ones, so drivers can print ``done/total`` progress directly.
        ``batch`` feeds :func:`~repro.sim.batch.resolve_batch` on the
        serial path, running same-recipe waves through the recipe's
        ``batch_fn`` — a pure accelerator, bit-identical to per-task
        execution and deliberately absent from checkpoint fingerprints.
        """
        ordered: List[Task] = []
        seen = set()
        duplicates = 0
        queue = list(tasks)
        if self.chaos is not None and self.chaos.duplicates:
            dup_ids = set(self.chaos.duplicates)
            queue += [t for t in tasks if t.task_id in dup_ids]
        for task in queue:
            if task.task_id in seen:
                duplicates += 1
                continue
            seen.add(task.task_id)
            ordered.append(task)
        if duplicates:
            _telemetry.counter("fabric.duplicates").inc(duplicates)

        results: Dict[str, object] = {}
        if self.resume and self.checkpoint_path:
            results = load_checkpoint(self.checkpoint_path, self.driver,
                                      self.fingerprint)
        total = len(ordered)
        fresh = 0

        def checkpoint():
            if self.checkpoint_path:
                write_checkpoint(self.checkpoint_path, self.driver,
                                 self.fingerprint, results)
                _events.event("checkpoint_write", driver=self.driver,
                              completed=len(results))

        def finish(task: Task, result, computed: bool):
            nonlocal fresh
            if _tracing.is_envelope(result):
                # Pool workers running under a propagated trace context
                # return an envelope: unwrap *before* anything persists,
                # so stored/checkpointed bytes never see trace framing.
                result, spans, metrics = _tracing.unwrap(result)
                if metrics:
                    _telemetry.get_registry().merge(metrics)
                _events.emit_remote_spans(spans)
            results[task.task_id] = result
            if computed and self.store is not None:
                self.store.put(task.key, result)
            fresh += 1
            if on_result is not None:
                on_result(task.task_id, result, len(results), total)
            if fresh % self.checkpoint_every == 0:
                checkpoint()

        pending = [t for t in ordered if t.task_id not in results]
        with _events.span("fabric.run", driver=self.driver,
                          tasks=len(ordered), pending=len(pending),
                          jobs=self.jobs):
            try:
                if self.store is not None and pending:
                    remaining = []
                    for task in pending:
                        hit = self.store.get(task.key)
                        if hit is not None:
                            _telemetry.counter("fabric.dedupe.hits").inc()
                            finish(task, hit, computed=False)
                        else:
                            _telemetry.counter("fabric.dedupe.misses").inc()
                            remaining.append(task)
                    pending = remaining

                if self.jobs > 1 and len(pending) > 1:
                    self._run_pool(pending, finish)
                elif pending:
                    self._run_serial(pending, finish, batch)
            except BaseException:
                # Deliberate driver interruptions and fatal errors alike:
                # persist what completed before propagating.
                checkpoint()
                raise
        checkpoint()
        return results

    # ------------------------------------------------------------------
    # Supervised pool execution
    # ------------------------------------------------------------------
    def _run_pool(self, pending: List[Task], finish):
        by_id = {t.task_id: t for t in pending}
        chaos = self.chaos
        # Propagate the driver's trace context (the fabric.run span) into
        # every worker task, so worker spans join the parent's trace tree.
        trace = _tracing.current_context()

        def spec_for(task):
            return lambda attempt: (
                execute_task,
                (task.recipe, task.params, task.task_id, attempt, chaos,
                 trace),
            )

        supervisor = PoolSupervisor(
            self.jobs, task_timeout=self.task_timeout,
            retries=self.retries, backoff_base=self.backoff,
            executor_factory=self.executor_factory,
            counter_prefix="fabric",
            circuit_threshold=self.circuit_threshold, sleep=self.sleep,
        )
        outcomes = supervisor.run(
            {t.task_id: spec_for(t) for t in pending},
            on_ok=lambda key, value: finish(by_id[key], value, True),
        )

        fatal = None
        timed_out = None
        gave_up: List[Task] = []
        for task in pending:
            outcome = outcomes.get(task.task_id)
            status = outcome.status if outcome is not None else "gave_up"
            if status != "ok":
                # The worker died/hung before returning its span buffer:
                # record the loss as a truncated span (span_begin, no
                # span_end) so the trace tree shows the crash instead of
                # silently dropping the subtree.
                _events.emit_truncated_span(
                    "fabric.task", trace, task=task.task_id, status=status,
                    attempts=outcome.attempts if outcome else 0,
                )
            if outcome is None:
                gave_up.append(task)
            elif outcome.status == "fatal" and fatal is None:
                fatal = outcome
            elif outcome.status == "timeout" and timed_out is None:
                timed_out = (task, outcome)
            elif outcome.status == "gave_up":
                gave_up.append(task)
        if fatal is not None:
            raise fatal.error
        if timed_out is not None:
            task, outcome = timed_out
            raise TaskTimeoutError(
                f"fabric task {task.task_id} exceeded its "
                f"{self.task_timeout:.3g}s watchdog {outcome.attempts} "
                "times; completed work is checkpointed",
                task=task.task_id, attempts=outcome.attempts,
                timeout=self.task_timeout,
            )
        if gave_up:
            _telemetry.counter("fabric.degradations").inc(len(gave_up))
            logger.warning(
                "fabric: pool gave up on %d task(s); completing them "
                "serially in the parent", len(gave_up),
            )
            self._run_serial(gave_up, finish, batch=1)

    # ------------------------------------------------------------------
    # Serial (and batched-serial) execution
    # ------------------------------------------------------------------
    def _execute_with_retries(self, task: Task):
        attempt = 1
        while True:
            try:
                # In-parent execution: the event log is local, so the task
                # span is opened directly (no envelope round-trip).
                with _events.span("fabric.task", task=task.task_id,
                                  attempt=attempt):
                    return execute_task(task.recipe, task.params,
                                        task.task_id, attempt, self.chaos)
            except Exception as exc:
                if not is_retryable(exc) or attempt > self.retries:
                    raise
                _telemetry.counter("fabric.retries").inc()
                _events.event("task_retry", task=task.task_id,
                              attempt=attempt + 1,
                              error=type(exc).__name__)
                logger.warning(
                    "fabric task %s failed (%s: %s); retrying (attempt "
                    "%d of %d)", task.task_id, type(exc).__name__, exc,
                    attempt + 1, self.retries + 1,
                )
                self.sleep(backoff_delay(attempt, base=self.backoff,
                                         key=task.task_id))
                attempt += 1

    def _run_serial(self, pending: List[Task], finish,
                    batch: Optional[int] = None):
        width = resolve_batch(batch)
        index = 0
        while index < len(pending):
            task = pending[index]
            batch_fn = get_recipe(task.recipe)[1] if width >= 2 else None
            if batch_fn is None:
                finish(task, self._execute_with_retries(task), True)
                index += 1
                continue
            wave = [task]
            while (len(wave) < width and index + len(wave) < len(pending)
                   and pending[index + len(wave)].recipe == task.recipe):
                wave.append(pending[index + len(wave)])
            with _events.span("fabric.batch", recipe=task.recipe,
                              tasks=len(wave)):
                wave_results = batch_fn([t.params for t in wave])
            for wave_task, result in zip(wave, wave_results):
                finish(wave_task, result, True)
            index += len(wave)
