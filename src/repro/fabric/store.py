"""Atomic, digest-framed artifact store for fabric task results.

One file per task result under ``<root>/artifacts/``, named by the task's
content-addressed key.  Payloads are canonical JSON wrapped in the trace
cache's integrity frame (magic + truncated sha256), written
write-temp-fsync-rename so concurrent campaigns can share one root.  A
frame that fails verification — truncated write, bit rot, a chaos-harness
bit flip — is quarantined to ``<root>/quarantine/`` and reads as a miss,
so the fabric recomputes the task instead of serving garbage: the same
self-healing discipline as :mod:`repro.harness.trace_cache`.

Unlike the trace cache, artifacts are keyed by task *parameters*, not by
content digests of the inputs — so a stale store could serve results
computed by an older build.  The store is therefore **opt-in**: set
``REPRO_FABRIC_STORE`` to a directory (or to ``1``/``on``/``auto`` for a
``fabric/`` subdirectory of the trace-cache root) to enable cross-campaign
dedupe, and ``repro-cli fabric gc --all`` after upgrading the simulator.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from repro.errors import CacheCorruptionError
from repro.harness.trace_cache import (
    default_cache_root,
    frame_payload,
    unframe_payload,
)
from repro.telemetry import get_logger
from repro.telemetry import registry as _telemetry

logger = get_logger(__name__)

#: Bump when the artifact payload layout changes.
STORE_SCHEMA = 1

_ENV_VAR = "REPRO_FABRIC_STORE"
_DISABLED_VALUES = ("0", "off", "none", "no", "false")
_ENABLED_VALUES = ("1", "on", "yes", "true", "auto")


class ArtifactStore:
    """Content-addressed result store under one root directory."""

    def __init__(self, root):
        self.root = Path(root)
        self._artifacts = self.root / "artifacts"
        self._quarantine_dir = self.root / "quarantine"

    def path(self, key: str) -> Path:
        return self._artifacts / f"{key}.json"

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def _write_atomic(self, path: Path, data: bytes):
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def quarantine(self, path: Path, reason):
        """Move a corrupt artifact aside so the task is recomputed."""
        try:
            self._quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self._quarantine_dir / path.name)
            _telemetry.counter("fabric.store.quarantined").inc()
            logger.warning(
                "quarantined corrupt fabric artifact %s (%s); the task "
                "will be recomputed", path.name, reason,
            )
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def get(self, key: str):
        """The stored result for ``key``, or ``None`` on miss/corruption."""
        path = self.path(key)
        try:
            data = path.read_bytes()
        except OSError:
            _telemetry.counter("fabric.store.misses").inc()
            return None
        try:
            payload = json.loads(unframe_payload(data).decode("utf-8"))
            if payload.get("schema") != STORE_SCHEMA:
                raise CacheCorruptionError(
                    f"artifact schema {payload.get('schema')!r}; this "
                    f"build writes {STORE_SCHEMA}"
                )
            result = payload["result"]
        except (CacheCorruptionError, ValueError, KeyError,
                UnicodeDecodeError) as exc:
            self.quarantine(path, exc)
            _telemetry.counter("fabric.store.misses").inc()
            return None
        _telemetry.counter("fabric.store.hits").inc()
        return result

    def put(self, key: str, result):
        """Persist one task result (canonical JSON, framed, atomic)."""
        payload = json.dumps(
            {"schema": STORE_SCHEMA, "key": key, "result": result},
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        self._write_atomic(self.path(key), frame_payload(payload))
        _telemetry.counter("fabric.store.stores").inc()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        out = {"root": str(self.root), "schema_version": STORE_SCHEMA}
        for kind, directory in (("artifacts", self._artifacts),
                                ("quarantined", self._quarantine_dir)):
            count = 0
            size = 0
            if directory.is_dir():
                for entry in directory.iterdir():
                    if entry.is_file():
                        count += 1
                        size += entry.stat().st_size
            out[kind] = {"entries": count, "bytes": size}
        return out

    def gc(self, everything: bool = False) -> int:
        """Delete quarantined entries (and, with ``everything``, all
        artifacts); returns the number of files removed."""
        removed = 0
        directories = [self._quarantine_dir]
        if everything:
            directories.append(self._artifacts)
        for directory in directories:
            if not directory.is_dir():
                continue
            for entry in directory.iterdir():
                if not entry.is_file():
                    continue
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


def default_store_root() -> Optional[Path]:
    """Resolve the store root from ``REPRO_FABRIC_STORE``.

    Returns ``None`` when the store is disabled — which is the default:
    dedupe keys are task parameters, so persistence across builds is an
    explicit user decision, not ambient state.
    """
    value = os.environ.get(_ENV_VAR)
    if value is None:
        return None
    value = value.strip()
    if not value or value.lower() in _DISABLED_VALUES:
        return None
    if value.lower() in _ENABLED_VALUES:
        cache_root = default_cache_root()
        return cache_root / "fabric" if cache_root is not None else None
    return Path(value).expanduser()


def resolve_store(store="auto") -> Optional[ArtifactStore]:
    """Normalise a store argument to an :class:`ArtifactStore` or ``None``.

    ``"auto"`` honours the environment (see :func:`default_store_root`);
    ``None``/``False`` disables; a path-like opens that directory; an
    :class:`ArtifactStore` passes through.
    """
    if store is None or store is False:
        return None
    if isinstance(store, ArtifactStore):
        return store
    if store == "auto":
        root = default_store_root()
        return ArtifactStore(root) if root is not None else None
    return ArtifactStore(store)
