"""One checkpoint format for every campaign driver.

Before the fabric, faults, verify, and report runs each carried their own
checkpoint layout with slightly different corruption behavior.  The fabric
checkpoint unifies them:

* **Schema-versioned** — a file written by an incompatible build refuses
  to resume instead of splicing silently.
* **Self-verifying** — the payload carries a sha256 over its canonical
  body, so *any* corruption (truncation, bit flips, partial writes the
  atomic rename should prevent but other tools might cause) is detected,
  not just unparseable JSON.
* **Quarantine on corruption** — a corrupt checkpoint is moved aside to
  ``<path>.quarantined`` and the campaign restarts cleanly from zero
  (results are deterministic, so a restart converges to the same bytes);
  only a *well-formed* checkpoint from a different driver or configuration
  raises :class:`~repro.errors.CheckpointError`, because that is a user
  error worth surfacing.
* **Atomic** — write-temp-fsync-rename, so the file is always either the
  previous or the current consistent state.
* **Executor-independent** — completed results are keyed by driver task
  id, so a campaign checkpointed under a process pool resumes serially
  (and vice versa) to bit-identical reports.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from repro.errors import CheckpointError
from repro.telemetry import get_logger
from repro.telemetry import registry as _telemetry

logger = get_logger(__name__)

#: Bump when the checkpoint layout changes.
CHECKPOINT_SCHEMA = 1


def _body_digest(driver: str, fingerprint: Dict[str, object],
                 completed: Dict[str, object]) -> str:
    body = json.dumps(
        {"driver": driver, "fingerprint": fingerprint,
         "completed": completed},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def quarantine_checkpoint(path: str, reason) -> None:
    """Move a corrupt checkpoint aside so the campaign restarts cleanly."""
    target = f"{path}.quarantined"
    try:
        os.replace(path, target)
    except OSError:
        try:
            os.unlink(path)
        except OSError:
            return
    _telemetry.counter("fabric.checkpoint.quarantined").inc()
    logger.warning(
        "quarantined corrupt checkpoint %s (%s); the campaign restarts "
        "from scratch", path, reason,
    )


def write_checkpoint(path: str, driver: str,
                     fingerprint: Dict[str, object],
                     completed: Dict[str, object]) -> None:
    """Atomically persist a campaign's completed-task table."""
    payload = {
        "schema": CHECKPOINT_SCHEMA,
        "driver": driver,
        "fingerprint": fingerprint,
        "completed": completed,
        "digest": _body_digest(driver, fingerprint, completed),
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def read_checkpoint_header(path: str) -> Optional[Dict[str, object]]:
    """The checkpoint's driver/fingerprint/size, or ``None`` if unusable.

    A read-only peek for ``repro-cli fabric status|resume``: never raises
    and never quarantines.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    completed = payload.get("completed")
    return {
        "schema": payload.get("schema"),
        "driver": payload.get("driver"),
        "fingerprint": payload.get("fingerprint"),
        "completed": len(completed) if isinstance(completed, dict) else 0,
        "verified": payload.get("digest") == _body_digest(
            payload.get("driver"), payload.get("fingerprint"),
            completed if isinstance(completed, dict) else {},
        ),
    }


def load_checkpoint(path: str, driver: str,
                    fingerprint: Dict[str, object]) -> Dict[str, object]:
    """Load a checkpoint's completed-task table for resuming.

    Corruption (unreadable, truncated, bit-flipped, digest mismatch)
    quarantines the file and returns an empty table — the campaign
    restarts cleanly.  A *valid* checkpoint written by a different driver,
    schema, or configuration raises :class:`CheckpointError`.
    """
    if not os.path.exists(path):
        return {}
    try:
        with open(path) as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise ValueError("checkpoint payload is not an object")
        completed = payload.get("completed")
        if not isinstance(completed, dict):
            raise ValueError("checkpoint has a malformed completed table")
        digest = payload.get("digest")
        if digest != _body_digest(payload.get("driver"),
                                  payload.get("fingerprint"), completed):
            raise ValueError("checkpoint failed its content digest")
    except (OSError, ValueError) as exc:
        quarantine_checkpoint(path, exc)
        return {}
    if payload.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint {path} has schema {payload.get('schema')!r}; "
            f"this build writes {CHECKPOINT_SCHEMA}"
        )
    if payload.get("driver") != driver:
        raise CheckpointError(
            f"checkpoint {path} belongs to driver "
            f"{payload.get('driver')!r}, not {driver!r}"
        )
    if payload.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"checkpoint {path} was written by a different {driver} "
            "configuration; delete it or match the original flags"
        )
    return dict(completed)
