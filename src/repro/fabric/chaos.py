"""Deterministic fault injection for the execution fabric.

A :class:`ChaosPlan` scripts exactly which (task, attempt) pairs get hurt
and how — no RNG at injection time, so a chaos run is as reproducible as
a clean one and the test suite can assert *byte-for-byte* convergence of
a tortured campaign to its serial oracle.  Supported injections:

* **Worker kills** — the worker process SIGKILLs itself before computing
  the task, surfacing in the parent as a crashed future (or, under the
  serial executor, as a synthetic :class:`~repro.errors.WorkerCrashError`
  so chaos tests do not kill the test process).
* **Hangs** — the worker sleeps past the watchdog so supervision must
  time the task out and retry it.
* **Duplicate delivery** — the engine enqueues a task twice; the first
  result wins and the duplicate must be coalesced, not recomputed into
  the report twice.
* **Artifact/checkpoint corruption** — :func:`truncate_file` and
  :func:`bitflip_file` damage on-disk state between runs; the store and
  checkpoint layers must quarantine and recompute.

Injections fire *before* the recipe runs (see
:func:`repro.fabric.task.execute_task`), so a retried attempt computes
the genuine result and determinism is preserved end to end.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import WorkerCrashError


@dataclass(frozen=True)
class ChaosPlan:
    """A scripted, picklable set of fault injections.

    ``kills`` and ``hangs`` are ``(task_id, attempt)`` pairs; ``duplicates``
    is a tuple of task_ids the engine enqueues twice.  ``parent_pid`` is
    captured at construction so a kill injection running *in the parent*
    (serial/degraded execution) raises instead of SIGKILLing the driver.
    """

    seed: int = 0
    kills: Tuple[Tuple[str, int], ...] = ()
    hangs: Tuple[Tuple[str, int], ...] = ()
    hang_seconds: float = 30.0
    duplicates: Tuple[str, ...] = ()
    parent_pid: int = field(default_factory=os.getpid)

    def perturb(self, task_id: str, attempt: int) -> None:
        """Fire any injection scripted for this (task, attempt)."""
        if (task_id, attempt) in self.kills:
            if os.getpid() != self.parent_pid:
                os.kill(os.getpid(), signal.SIGKILL)
            raise WorkerCrashError(
                f"chaos: injected worker crash for {task_id} "
                f"(attempt {attempt})",
                task=task_id, attempts=attempt,
            )
        if (task_id, attempt) in self.hangs:
            if os.getpid() != self.parent_pid:
                time.sleep(self.hang_seconds)
            else:
                # In-parent execution cannot be watchdogged; surface the
                # hang as a crash so the retry path still exercises.
                raise WorkerCrashError(
                    f"chaos: injected hang for {task_id} "
                    f"(attempt {attempt}) ran in-parent",
                    task=task_id, attempts=attempt,
                )


def pick_targets(seed: int, task_ids, count: int) -> Tuple[str, ...]:
    """Deterministically choose ``count`` victims from ``task_ids``.

    Ranks ids by ``sha256(seed:id)`` — stable across runs and independent
    of iteration order, so CI chaos scenarios stay reproducible.
    """
    ranked = sorted(
        task_ids,
        key=lambda tid: hashlib.sha256(f"{seed}:{tid}".encode()).hexdigest(),
    )
    return tuple(ranked[:max(0, count)])


def truncate_file(path: str, keep: int = 0) -> None:
    """Corrupt a file by truncating it to ``keep`` bytes."""
    with open(path, "rb+") as handle:
        handle.truncate(max(0, keep))


def bitflip_file(path: str, bit: int = 0) -> None:
    """Corrupt a file by flipping one bit (``bit`` counts from offset 0)."""
    with open(path, "rb+") as handle:
        data = bytearray(handle.read())
        if not data:
            return
        index = (bit // 8) % len(data)
        data[index] ^= 1 << (bit % 8)
        handle.seek(0)
        handle.write(data)
        handle.truncate(len(data))
