"""Tests for the two-level PC:DISEPC control model (Section 2.1/2.2).

These exercise the subtlest parts of the paper: DISE-internal branches,
the not-taken semantics of non-trigger application branches, the
predicted-path semantics of trigger branches, and precise state across
mid-sequence interrupts.
"""

import pytest

from repro.core.controller import DiseController
from repro.core.directives import AbsTarget, Lit, T_RS
from repro.core.language import parse_productions
from repro.core.pattern import PatternSpec, match_opcode, match_stores
from repro.core.production import ProductionSet
from repro.core.replacement import (
    TRIGGER_INSN,
    ReplacementInstr,
    ReplacementSpec,
)
from repro.isa.build import (
    Imm,
    addq,
    bis,
    bne,
    halt,
    out,
    stq,
)
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import dise_reg, parse_reg
from repro.program.builder import ProgramBuilder
from repro.sim.functional import Machine

from conftest import A0, A1, T0, ZERO

DR0, DR1 = dise_reg(0), dise_reg(1)


def machine_for(instrs, pset, data=None, init=None):
    b = ProgramBuilder()
    if data:
        for name, words in data.items():
            b.alloc_data(name, len(words), init=words)
    b.label("main")
    for item in instrs:
        if isinstance(item, tuple) and item[0] == "la":
            b.load_address(item[1], item[2])
        else:
            b.emit(item)
    b.emit(halt())
    b.label("handler")
    b.emit(out(ZERO))
    b.emit(halt())
    image = b.build()
    controller = DiseController()
    controller.install(pset)
    machine = Machine(image, controller=controller)
    if init:
        init(machine)
    return machine, image


class TestDiseBranches:
    def test_taken_dise_branch_skips_within_sequence(self):
        pset = parse_productions("""
P1: T.OPCLASS == store -> R1
R1:
    dbr   .end
    out   $dr1
.end:
    T.INSN
""")
        machine, _ = machine_for(
            [("la", A1, "buf"), bis(ZERO, Imm(5), T0), stq(T0, 0, A1)],
            pset, data={"buf": [0]},
        )
        result = machine.run()
        assert result.outputs == [], "dbr skipped the out"
        assert result.final_memory.read(machine.image.data_base) == 5

    def test_untaken_dise_branch_falls_through(self):
        pset = parse_productions("""
P1: T.OPCLASS == store -> R1
R1:
    dbne  $dr1, .end
    out   $dr1
.end:
    T.INSN
""")
        machine, _ = machine_for(
            [("la", A1, "buf"), stq(T0, 0, A1)],
            pset, data={"buf": [0]},
        )
        result = machine.run()   # $dr1 == 0: not taken, out executes
        assert result.outputs == [0]

    def test_dise_branch_backward_loop_in_sequence(self):
        # A replacement sequence with an internal loop: count $dr0 down.
        pset = ProductionSet("looping")
        pset.define(match_stores(), ReplacementSpec(instrs=(
            ReplacementInstr(opcode=Opcode.SUBQ, ra=Lit(DR0), imm=Lit(1),
                             rc=Lit(DR0)),
            ReplacementInstr(opcode=Opcode.DBNE, ra=Lit(DR0), imm=Lit(0)),
            TRIGGER_INSN,
        )))

        def init(machine):
            machine.regs[DR0] = 3

        machine, _ = machine_for(
            [("la", A1, "buf"), stq(T0, 0, A1)],
            pset, data={"buf": [0]}, init=init,
        )
        result = machine.run()
        assert result.final_regs[DR0] == 0
        # subq executed 3 times, dbne 3 times, store once.
        assert result.instructions >= 7


class TestNonTriggerAppBranch:
    """Non-trigger replacement branches: squash the rest when taken."""

    def test_taken_branch_abandons_sequence(self):
        pset = ProductionSet("check")
        pset.define(match_stores(), ReplacementSpec(instrs=(
            ReplacementInstr(opcode=Opcode.BNE, ra=Lit(DR1),
                             imm=AbsTarget(0)),   # patched below
            ReplacementInstr(opcode=Opcode.OUT, ra=Lit(DR1)),
            TRIGGER_INSN,
        )))

        machine, image = machine_for(
            [("la", A1, "buf"), stq(T0, 0, A1), out(A0)],
            pset, data={"buf": [0]},
        )
        # Retarget the AbsTarget at the handler now that we know it.
        handler = image.symbol_address("handler")
        pset2 = ProductionSet("check2")
        pset2.define(match_stores(), ReplacementSpec(instrs=(
            ReplacementInstr(opcode=Opcode.BNE, ra=Lit(DR1),
                             imm=AbsTarget(handler)),
            ReplacementInstr(opcode=Opcode.OUT, ra=Lit(DR1)),
            TRIGGER_INSN,
        )))
        machine.controller.uninstall("check")
        machine.controller.install(pset2)
        machine.regs[DR1] = 1   # branch will be taken
        result = machine.run()
        # Sequence abandoned: neither the out nor the store executed; the
        # handler's `out zero` ran instead.
        assert result.outputs == [0]
        assert result.final_memory.read(machine.image.data_base) == 0

    def test_untaken_branch_continues_sequence(self, loop_image):
        pset = parse_productions("""
P1: T.OPCLASS == store -> R1
R1:
    bne   $dr1, @0x400000
    T.INSN
""")
        controller = DiseController()
        controller.install(pset)
        machine = Machine(loop_image, controller=controller)
        result = machine.run()   # $dr1 == 0: checks pass silently
        assert result.outputs == [15]


class TestTriggerBranchPredictedPath:
    """Post-trigger replacement instructions execute on the predicted path
    and the branch outcome applies at sequence end (branch profiling)."""

    def make_profiling_machine(self):
        # Count every conditional-branch execution in $dr0, with the
        # trigger in the middle of the sequence.
        pset = ProductionSet("profile")
        pset.add_replacement(0, ReplacementSpec(instrs=(
            TRIGGER_INSN,
            ReplacementInstr(opcode=Opcode.ADDQ, ra=Lit(DR0), imm=Lit(1),
                             rc=Lit(DR0)),
        )))
        pset.add_production(PatternSpec(opcode=Opcode.BNE), seq_id=0)

        from repro.isa.build import subq

        b = ProgramBuilder()
        b.label("main")
        b.emit(bis(ZERO, Imm(3), T0))
        b.label("loop")
        b.emit(addq(A0, Imm(1), A0))
        b.emit(subq(T0, Imm(1), T0))
        b.emit(bne(T0, "loop"))
        b.emit(out(A0))
        b.emit(halt())
        image = b.build()
        controller = DiseController()
        controller.install(pset)
        return Machine(image, controller=controller)

    def test_counter_updates_after_taken_trigger_branch(self):
        machine = self.make_profiling_machine()
        result = machine.run()
        assert result.outputs == [3], "loop body ran 3 times"
        # The bne executed 3 times (taken twice, untaken once); the
        # post-trigger counter update ran every time, including taken ones.
        assert result.final_regs[DR0] == 3


class TestPreciseState:
    def build_mfi_machine(self):
        pset = parse_productions("""
P1: T.OPCLASS == store -> R1
R1:
    srl   T.RS, #26, $dr1
    xor   $dr1, $dr2, $dr1
    bne   $dr1, @0x400100
    T.INSN
""")
        b = ProgramBuilder()
        b.alloc_data("buf", 2, init=[0, 0])
        b.label("main")
        b.load_address(A1, "buf")
        b.emit(bis(ZERO, Imm(5), T0))
        b.emit(stq(T0, 0, A1))
        b.emit(stq(T0, 8, A1))
        b.emit(out(T0))
        b.emit(halt())
        image = b.build()
        controller = DiseController()
        controller.install(pset)
        machine = Machine(image, controller=controller)
        machine.regs[dise_reg(2)] = image.data_base >> 26
        return machine

    def test_checkpoint_restore_at_every_boundary(self):
        """Interrupting at any PC:DISEPC boundary and restarting reproduces
        the identical execution (the paper's precise-state guarantee)."""
        reference = self.build_mfi_machine().run()

        # Determine the run length first.
        total = reference.instructions
        for interrupt_at in range(1, total):
            machine = self.build_mfi_machine()
            for _ in range(interrupt_at):
                machine.step()
            state = machine.checkpoint()
            # Simulate handler execution trashing the pipeline: restore.
            resumed = self.build_mfi_machine()
            resumed.restore(state)
            result = resumed.run()
            assert result.outputs == reference.outputs, interrupt_at
            assert result.final_regs == reference.final_regs, interrupt_at
            assert (result.final_memory == reference.final_memory), interrupt_at

    def test_checkpoint_mid_sequence_reports_disepc(self):
        machine = self.build_mfi_machine()
        # Step until we're inside an expansion.
        while machine._exp is None or machine._disepc == 0:
            machine.step()
        state = machine.checkpoint()
        assert state["disepc"] > 0
