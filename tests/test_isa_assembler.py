"""Unit tests for the assembler."""

import pytest

from repro.isa.assembler import (
    AssemblyError,
    Label,
    assemble,
    parse_instruction,
    parse_line,
)
from repro.isa.build import (
    Imm,
    addq,
    beq,
    bne,
    br,
    bsr,
    codeword,
    dbne,
    fault,
    halt,
    jsr,
    ldq,
    nop,
    out,
    ret,
    stq,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import ZERO_REG, parse_reg


class TestInstructionParsing:
    @pytest.mark.parametrize("text,expected", [
        ("ldq a0, 8(sp)", ldq(16, 8, 30)),
        ("ldq a0, (sp)", ldq(16, 0, 30)),
        ("stq t0, -16(a1)", stq(1, -16, 17)),
        ("addq t0, t1, t2", addq(1, 2, 3)),
        ("addq t0, #5, t2", addq(1, Imm(5), 3)),
        ("addq t0, 5, t2", addq(1, Imm(5), 3)),
        ("bne t0, loop", bne(1, "loop")),
        ("bne t0, -4", bne(1, -4)),
        ("beq zero, 0", beq(ZERO_REG, 0)),
        ("br zero, done", br("done")),
        ("br done", br("done")),
        ("bsr ra, callee", bsr(26, "callee")),
        ("jsr ra, (pv)", jsr(26, 27)),
        ("ret zero, (ra)", ret(26)),
        ("ret (ra)", ret(26)),
        ("nop", nop()),
        ("halt", halt()),
        ("out a0", out(16)),
        ("fault 7", fault(7)),
        ("dbne $dr1, 3", None),  # checked below: dise reg operand
    ])
    def test_parse(self, text, expected):
        parsed = parse_instruction(text)
        if expected is not None:
            assert parsed == expected

    def test_parse_dise_branch(self):
        parsed = parse_instruction("dbne $dr1, 3")
        assert parsed.opcode is Opcode.DBNE
        assert parsed.ra == parse_reg("$dr1")
        assert parsed.imm == 3

    def test_parse_codeword_positional(self):
        parsed = parse_instruction("res0 a0, a1, a2, 42")
        assert parsed == codeword(Opcode.RES0, 16, 17, 18, 42)

    def test_parse_codeword_keyvalue(self):
        parsed = parse_instruction("res1 p1=t0, p2=t1, p3=t2, tag=100")
        assert parsed == codeword(Opcode.RES1, 1, 2, 3, 100)

    @pytest.mark.parametrize("bad", [
        "ldq a0",
        "ldq a0, sp",
        "addq a0, a1",
        "jsr ra, pv",
        "nop 3",
        "halt now",
        "out",
        "frob a0, a1",
    ])
    def test_parse_errors(self, bad):
        with pytest.raises((AssemblyError, ValueError)):
            parse_instruction(bad)


class TestLinesAndComments:
    def test_label_alone(self):
        assert parse_line("main:") == [Label("main")]

    def test_label_with_instruction(self):
        items = parse_line("loop: subq t0, #1, t0")
        assert items[0] == Label("loop")
        assert items[1].opcode is Opcode.SUBQ

    def test_multiple_labels(self):
        items = parse_line("a: b: nop")
        assert items[:2] == [Label("a"), Label("b")]

    def test_comment_stripped(self):
        assert parse_line("nop  # does nothing") == [nop()]
        assert parse_line("; pure comment") == []

    def test_hash_immediate_not_comment(self):
        items = parse_line("addq t0, #12, t0")
        assert items[0].imm == 12

    def test_blank_line(self):
        assert parse_line("   ") == []


class TestAssemble:
    def test_program(self):
        items = assemble("""
        main:
            bis zero, #3, t0
        loop:
            subq t0, #1, t0
            bne t0, loop
            halt
        """)
        labels = [i for i in items if isinstance(i, Label)]
        instrs = [i for i in items if not isinstance(i, Label)]
        assert [l.name for l in labels] == ["main", "loop"]
        assert len(instrs) == 4

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as err:
            assemble("nop\nbadop x, y\n")
        assert "line 2" in str(err.value)
