"""Parallel figure harness: fan-out, fallback, and Suite integration."""

import logging
from concurrent.futures import Future

import pytest

from repro.harness import Suite, fig6_top, fig6_width
from repro.harness.parallel import (
    TraceTask,
    build_installation,
    resolve_jobs,
    run_tasks,
)
from repro.harness.trace_cache import (
    LazyTrace,
    TraceCache,
    serialize_trace,
    trace_fingerprint,
)
from repro.sim.config import MachineConfig

SCALE = 0.2
BENCHES = ("mcf", "gzip")


def _plan(configs=None):
    configs = configs if configs is not None else [MachineConfig()]
    return [
        (TraceTask(bench="mcf", scale=SCALE, kind="plain"), configs),
        (TraceTask(bench="mcf", scale=SCALE, kind="mfi", variant="dise3"),
         configs),
        (TraceTask(bench="gzip", scale=SCALE, kind="rewrite"), configs),
    ]


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_garbage_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        assert resolve_jobs() == 1

    def test_floor_is_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestTraceTask:
    def test_suite_keys(self):
        assert TraceTask("mcf", 1.0, "plain").suite_key() == ("mcf", "plain")
        assert TraceTask("mcf", 1.0, "mfi", variant="dise4").suite_key() == \
            ("mcf", "mfi", "dise4")
        assert TraceTask("mcf", 1.0, "rewrite").suite_key() == \
            ("mcf", "rewrite")
        assert TraceTask("mcf", 1.0, "compressed", label="DISE").suite_key() \
            == ("mcf", "compressed", "DISE")
        assert TraceTask("mcf", 1.0, "composed", scheme="mfi+comp") \
            .suite_key() == ("mcf", "composed", "mfi+comp")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceTask("mcf", 1.0, "nonsense")

    def test_build_installation_is_deterministic(self):
        task = TraceTask("mcf", SCALE, "mfi", variant="dise3")
        a = build_installation(task)
        b = build_installation(task)
        assert [repr(i) for i in a.image.instructions] == \
            [repr(i) for i in b.image.instructions]


class TestRunTasks:
    def test_parallel_is_bit_identical_to_serial(self):
        serial = run_tasks(_plan(), jobs=1)
        parallel = run_tasks(_plan(), jobs=2)
        assert set(serial) == set(parallel)
        for task in serial:
            _, trace_s, cycles_s = serial[task]
            _, trace_p, cycles_p = parallel[task]
            assert serialize_trace(trace_s) == serialize_trace(trace_p)
            assert cycles_s == cycles_p

    def test_results_populate_cache(self, tmp_path):
        cache = TraceCache(tmp_path)
        run_tasks(_plan(), jobs=2, cache=cache)
        stats = cache.stats()
        assert stats["traces"]["entries"] == 3
        assert stats["cycles"]["entries"] == 3

    def test_cached_rerun_matches(self, tmp_path):
        cache = TraceCache(tmp_path)
        first = run_tasks(_plan(), jobs=1, cache=cache)
        second = run_tasks(_plan(), jobs=2, cache=cache)
        for task in first:
            assert serialize_trace(first[task][1]) == \
                serialize_trace(second[task][1])
            assert first[task][2] == second[task][2]

    def test_fully_cached_rerun_stays_lazy(self, tmp_path):
        cache = TraceCache(tmp_path)
        run_tasks(_plan(), jobs=1, cache=cache)
        warm = run_tasks(_plan(), jobs=2, cache=cache)
        for task, (digest, trace, cycles) in warm.items():
            assert isinstance(trace, LazyTrace)
            assert trace._real is None      # ops never deserialized
            assert digest is not None and cycles
        # Materializing still yields the stored trace.
        reference = run_tasks(_plan(), jobs=1)
        for task in reference:
            assert serialize_trace(warm[task][1]) == \
                serialize_trace(reference[task][1])

    def test_worker_failure_falls_back_to_serial(self, caplog):
        class FailingExecutor:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, *args):
                future = Future()
                future.set_exception(RuntimeError("worker exploded"))
                return future

        with caplog.at_level(logging.WARNING, logger="repro.harness.parallel"):
            results = run_tasks(_plan(), jobs=2,
                                executor_factory=FailingExecutor)
        assert len(results) == 3
        assert any("falling back to serial" in rec.message
                   for rec in caplog.records)
        reference = run_tasks(_plan(), jobs=1)
        for task in reference:
            assert serialize_trace(results[task][1]) == \
                serialize_trace(reference[task][1])

    def test_broken_pool_completes_serially(self, caplog):
        def broken_factory():
            raise OSError("fork failed")

        with caplog.at_level(logging.WARNING, logger="repro.harness.parallel"):
            results = run_tasks(_plan(), jobs=2,
                                executor_factory=broken_factory)
        assert len(results) == 3
        assert any("completing serially" in rec.message
                   for rec in caplog.records)

    def test_config_lists_are_merged_per_task(self):
        task = TraceTask("mcf", SCALE, "plain")
        wide = MachineConfig(width=8)
        plan = [(task, [MachineConfig()]), (task, [MachineConfig(), wide])]
        results = run_tasks(plan, jobs=1)
        assert len(results) == 1
        assert set(results[task][2]) == {repr(MachineConfig()), repr(wide)}


class TestSuiteIntegration:
    def test_prefetch_populates_traces_and_cycles(self):
        suite = Suite(benchmarks=BENCHES, scale=SCALE, jobs=2, cache=None)
        config = MachineConfig()
        plan = [
            (suite.task("plain", "mcf"), [config]),
            (suite.task("mfi", "gzip", variant="dise3"), [config]),
        ]
        count = suite.prefetch(plan)
        assert count == 2
        assert ("mcf", "plain") in suite._traces
        assert ("gzip", "mfi", "dise3") in suite._traces
        trace = suite._traces[("mcf", "plain")]
        assert (trace_fingerprint(trace), repr(config)) in suite._cycles
        # A second prefetch of the same plan is a no-op.
        assert suite.prefetch(plan) == 0

    def test_prefetch_serial_jobs_is_noop(self):
        suite = Suite(benchmarks=BENCHES, scale=SCALE, jobs=1, cache=None)
        plan = [(suite.task("plain", "mcf"), [MachineConfig()])]
        assert suite.prefetch(plan) == 0
        assert ("mcf", "plain") not in suite._traces

    def test_parallel_cached_figures_match_serial(self, tmp_path):
        serial = Suite(benchmarks=BENCHES, scale=SCALE, jobs=1, cache=None)
        fast = Suite(benchmarks=BENCHES, scale=SCALE, jobs=2,
                     cache=tmp_path / "cache")
        for experiment in (fig6_top, fig6_width):
            assert experiment(serial).render() == experiment(fast).render()
        # Warm rerun out of the cache in a fresh suite: still identical.
        warm = Suite(benchmarks=BENCHES, scale=SCALE, jobs=2,
                     cache=tmp_path / "cache")
        for experiment in (fig6_top, fig6_width):
            assert experiment(serial).render() == experiment(warm).render()

    def test_suite_cycles_usage_hits_persistent_cache(self, tmp_path):
        config = MachineConfig()
        first = Suite(benchmarks=("mcf",), scale=SCALE, jobs=1,
                      cache=tmp_path / "cache")
        trace = first.trace_plain("mcf")
        result = first.cycles(trace, config)
        second = Suite(benchmarks=("mcf",), scale=SCALE, jobs=1,
                       cache=tmp_path / "cache")
        trace2 = second.trace_plain("mcf")
        assert trace2.cache_key is not None
        assert second.cycles(trace2, config) == result
