"""Unit and property tests for the disassembler."""

from hypothesis import given

from repro.isa.assembler import parse_instruction
from repro.isa.build import beq, bne, br, halt, ldq, nop
from repro.isa.disassembler import (
    branch_target_addr,
    disassemble,
    disassemble_listing,
)
from repro.isa.encoding import canonicalize
from test_isa_encoding import any_instr


class TestAsmDisasmRoundTrip:
    @given(any_instr)
    def test_round_trip(self, instr):
        text = disassemble(instr)
        assert parse_instruction(text) == canonicalize(instr)


class TestSymbolisation:
    def test_branch_target_addr(self):
        # beq at 0x1000 with displacement 3 -> 0x1000 + 4 + 12.
        assert branch_target_addr(beq(1, 3), 0x1000) == 0x1010
        assert branch_target_addr(beq(1, -1), 0x1000) == 0x1000

    def test_non_branches_have_no_target(self):
        assert branch_target_addr(ldq(1, 0, 2), 0x1000) is None
        assert branch_target_addr(nop(), 0x1000) is None

    def test_symbolised_disassembly(self):
        symbols = {0x1010: "loop"}
        text = disassemble(beq(1, 3), pc=0x1000, symbols=symbols)
        assert text == "beq t0, loop"

    def test_unknown_target_stays_numeric(self):
        text = disassemble(beq(1, 3), pc=0x1000, symbols={0x9999: "x"})
        assert text == "beq t0, 3"

    def test_listing(self):
        listing = disassemble_listing(
            [nop(), bne(1, -2), halt()],
            base=0x400000,
            symbols={0x400000: "main"},
        )
        assert "main:" in listing
        assert "0x00400000" in listing
        assert "halt" in listing
        # The backward branch targets main and is symbolised.
        assert "bne t0, main" in listing
