"""Harness resilience: watchdogs, retries, and report checkpoint/resume."""

import json
import logging
import os
from concurrent.futures import Future

import pytest

from repro.errors import CheckpointError, TaskTimeoutError
from repro.harness import Suite
from repro.harness.checkpoint import RunCheckpoint
from repro.harness.parallel import (
    TaskResults,
    TraceTask,
    resolve_retries,
    resolve_task_timeout,
    run_tasks,
)
from repro.harness.report import build_report, report_fingerprint
from repro.harness.trace_cache import serialize_trace
from repro.sim.config import MachineConfig

SCALE = 0.05


def _plan():
    return [
        (TraceTask("mcf", SCALE, "plain"), [MachineConfig()]),
        (TraceTask("gzip", SCALE, "plain"), [MachineConfig()]),
    ]


class _InlineFuture(Future):
    """A future that ran its work synchronously at submit time."""

    def __init__(self, fn, args):
        super().__init__()
        try:
            self.set_result(fn(*args))
        except Exception as exc:
            self.set_exception(exc)


class FlakyExecutor:
    """Fails the first ``crashes`` submissions, then works inline —
    an induced worker crash that a retry recovers from."""

    def __init__(self, crashes=1):
        self.crashes = crashes
        self.submissions = 0

    def __call__(self):        # doubles as its own factory
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args):
        self.submissions += 1
        if self.submissions <= self.crashes:
            future = Future()
            future.set_exception(RuntimeError("worker killed"))
            return future
        return _InlineFuture(fn, args)


class HangingExecutor:
    """Every submitted future hangs forever."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args):
        return Future()

    def shutdown(self, **kwargs):
        pass


class TestEnvResolution:
    def test_timeout_explicit_and_env(self, monkeypatch):
        assert resolve_task_timeout(2.5) == 2.5
        assert resolve_task_timeout(0) is None
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "7.5")
        assert resolve_task_timeout() == 7.5
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "junk")
        assert resolve_task_timeout() is None

    def test_retries_explicit_and_env(self, monkeypatch):
        assert resolve_retries(3) == 3
        assert resolve_retries(-1) == 0
        monkeypatch.setenv("REPRO_TASK_RETRIES", "4")
        assert resolve_retries() == 4
        monkeypatch.delenv("REPRO_TASK_RETRIES")
        assert resolve_retries() == 1


class TestRetries:
    def test_induced_crash_recovers_via_retry(self, caplog):
        executor = FlakyExecutor(crashes=1)
        with caplog.at_level(logging.WARNING,
                             logger="repro.harness.parallel"):
            results = run_tasks(_plan(), jobs=2, executor_factory=executor,
                                retries=1, backoff=0.0)
        assert len(results) == 2
        assert not results.failures
        assert any("retrying" in rec.message for rec in caplog.records)
        # Retried results are the same as an undisturbed serial run.
        reference = run_tasks(_plan(), jobs=1)
        for task in reference:
            assert serialize_trace(results[task][1]) == \
                serialize_trace(reference[task][1])

    def test_exhausted_retries_fall_back_to_serial(self, caplog):
        executor = FlakyExecutor(crashes=100)     # never recovers in-pool
        with caplog.at_level(logging.WARNING,
                             logger="repro.harness.parallel"):
            results = run_tasks(_plan(), jobs=2, executor_factory=executor,
                                retries=1, backoff=0.0)
        assert len(results) == 2                  # serial fallback saved it
        assert any("falling back to serial" in rec.message
                   for rec in caplog.records)


class TestWatchdog:
    def test_hung_tasks_are_skipped_with_structured_failures(self, caplog):
        with caplog.at_level(logging.WARNING,
                             logger="repro.harness.parallel"):
            results = run_tasks(_plan(), jobs=2,
                                executor_factory=HangingExecutor,
                                task_timeout=0.05, retries=1, backoff=0.0)
        assert isinstance(results, TaskResults)
        assert len(results) == 0
        assert len(results.failures) == 2
        for failure in results.failures:
            assert isinstance(failure.error, TaskTimeoutError)
            assert failure.error.retryable
            assert failure.attempts == 2          # initial try + 1 retry
            details = failure.details()
            assert details["type"] == "TaskTimeoutError"
            assert details["timeout"] == 0.05
        assert any("skipping" in rec.message for rec in caplog.records)

    def test_no_watchdog_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        results = run_tasks(_plan(), jobs=2)
        assert len(results) == 2 and not results.failures


class TestReportCheckpoint:
    EXPS = ("fig6_top",)

    def _suite(self):
        return Suite(benchmarks=("mcf",), scale=SCALE, cache=None)

    def test_record_and_resume_round_trip(self, tmp_path):
        suite = self._suite()
        fingerprint = report_fingerprint(suite, self.EXPS)
        path = str(tmp_path / "ck.json")

        reference = build_report(suite, experiments=self.EXPS)

        checkpoint = RunCheckpoint(path, fingerprint)
        first = build_report(suite, experiments=self.EXPS,
                             checkpoint=checkpoint)
        assert first == reference
        assert os.path.exists(path) and len(checkpoint) == 1

        # A "resumed" run replays the checkpointed section — even on a
        # suite that could not recompute it — and renders identically.
        broken = Suite(benchmarks=("nonsense",), scale=SCALE, cache=None)
        broken.benchmarks = ("mcf",)   # fingerprint-compatible, unusable
        restored = RunCheckpoint.load(path, fingerprint)
        assert len(restored) == 1
        resumed = build_report(broken, experiments=self.EXPS,
                               checkpoint=restored)
        assert resumed == reference

    def test_fingerprint_mismatch_refuses(self, tmp_path):
        suite = self._suite()
        path = str(tmp_path / "ck.json")
        checkpoint = RunCheckpoint(path, report_fingerprint(suite,
                                                            self.EXPS))
        checkpoint.record("fig6_top", "## stale section")
        with pytest.raises(CheckpointError):
            RunCheckpoint.load(
                path, report_fingerprint(suite, ("fig6_top", "fig6_width"))
            )

    def test_corrupt_checkpoint_quarantined(self, tmp_path):
        # A truncated/bit-flipped checkpoint must not kill the resume:
        # it is renamed aside and the run restarts from empty.
        path = tmp_path / "ck.json"
        path.write_text("{not json")
        checkpoint = RunCheckpoint.load(str(path), {"anything": 1})
        assert len(checkpoint) == 0
        assert not path.exists()
        assert (tmp_path / "ck.json.quarantined").exists()

    def test_malformed_checkpoint_quarantined(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"schema": 1, "fingerprint": {"x": 1},
                                    "sections": "oops"}))
        checkpoint = RunCheckpoint.load(str(path), {"x": 1})
        assert len(checkpoint) == 0
        assert (tmp_path / "ck.json.quarantined").exists()

    def test_missing_checkpoint_starts_empty(self, tmp_path):
        checkpoint = RunCheckpoint.load(str(tmp_path / "absent.json"),
                                        {"x": 1})
        assert len(checkpoint) == 0
        assert checkpoint.completed("fig6_top") is None

    def test_clear_removes_the_file(self, tmp_path):
        path = str(tmp_path / "ck.json")
        checkpoint = RunCheckpoint(path, {"x": 1})
        checkpoint.record("a", "text")
        assert os.path.exists(path)
        checkpoint.clear()
        assert not os.path.exists(path)
        assert len(checkpoint) == 0


class TestKilledWorkerResume:
    """The ISSUE acceptance scenario: a worker dies mid-figure; the run is
    interrupted; ``--resume`` completes with identical output."""

    def test_crash_interrupt_resume_identical(self, tmp_path, caplog):
        exps = ("fig6_top", "fig6_width")
        suite = Suite(benchmarks=("mcf",), scale=SCALE, cache=None,
                      jobs=2)
        fingerprint = report_fingerprint(suite, exps)
        path = str(tmp_path / "ck.json")
        reference = build_report(self._fresh(), experiments=exps)

        # Run 1 "dies" after the first experiment (simulated by an
        # exception from the second), leaving the checkpoint behind.
        checkpoint = RunCheckpoint(path, fingerprint)
        from repro.harness import report as report_mod

        real = report_mod._render_section
        calls = []

        def dying(name, suite_):
            calls.append(name)
            if len(calls) == 2:
                raise KeyboardInterrupt("killed mid-figure")
            return real(name, suite_)

        report_mod._render_section = dying
        try:
            with pytest.raises(KeyboardInterrupt):
                build_report(self._fresh(), experiments=exps,
                             checkpoint=checkpoint)
        finally:
            report_mod._render_section = real
        assert len(RunCheckpoint.load(path, fingerprint)) == 1

        # Run 2 resumes: only the unfinished experiment is recomputed.
        restored = RunCheckpoint.load(path, fingerprint)
        resumed = build_report(self._fresh(), experiments=exps,
                               checkpoint=restored)
        assert resumed == reference

    @staticmethod
    def _fresh():
        return Suite(benchmarks=("mcf",), scale=SCALE, cache=None, jobs=2)
