"""The execution fabric: task keys, artifact store, checkpoint, engine,
supervision.  Chaos-driven end-to-end convergence lives in
test_fabric_chaos.py."""

import os
from concurrent.futures import Future

import pytest

from repro.errors import (
    CampaignError,
    CheckpointError,
    FabricError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.fabric import (
    ArtifactStore,
    ChaosPlan,
    Fabric,
    PoolSupervisor,
    Task,
    bitflip_file,
    load_checkpoint,
    read_checkpoint_header,
    register_recipe,
    task_key,
    truncate_file,
    write_checkpoint,
)
from repro.fabric.chaos import pick_targets
from repro.fabric.checkpoint import quarantine_checkpoint
from repro.fabric.engine import (
    resolve_circuit_threshold,
    resolve_fabric_backoff,
    resolve_fabric_retries,
    resolve_fabric_timeout,
)
from repro.fabric.store import default_store_root, resolve_store
from repro.fabric.task import canonical_params
from repro.telemetry import enabled_scope
from repro.telemetry import registry as registry_mod


# ----------------------------------------------------------------------
# Test recipes (module-level so they are registered at import time)
# ----------------------------------------------------------------------
def _double(params):
    return {"value": params["x"] * 2}


def _double_batch(params_list):
    return [{"value": p["x"] * 2} for p in params_list]


register_recipe("tests.test_fabric:double", _double, _double_batch)

_FLAKY_FAILURES = {}


def _flaky(params):
    """Fails ``params['failures']`` times per distinct x, then succeeds."""
    count = _FLAKY_FAILURES.get(params["x"], 0)
    if count < params["failures"]:
        _FLAKY_FAILURES[params["x"]] = count + 1
        raise WorkerCrashError("induced", task=str(params["x"]))
    return {"value": params["x"]}


register_recipe("tests.test_fabric:flaky", _flaky)


def _fatal(params):
    raise CampaignError("deterministic model error")


register_recipe("tests.test_fabric:fatal", _fatal)


def _tasks(n, recipe="tests.test_fabric:double", **extra):
    return [Task(recipe=recipe, params=dict({"x": i}, **extra),
                 task_id=f"t{i:03d}") for i in range(n)]


class _InlineFuture(Future):
    def __init__(self, fn, args):
        super().__init__()
        try:
            self.set_result(fn(*args))
        except Exception as exc:
            self.set_exception(exc)


class InlineExecutor:
    """Runs submissions synchronously in-process; doubles as its factory."""

    def __call__(self):
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args):
        return _InlineFuture(fn, args)


class CrashingExecutor(InlineExecutor):
    """Fails the first ``crashes`` submissions with a crashed future."""

    def __init__(self, crashes):
        self.crashes = crashes
        self.submissions = 0

    def submit(self, fn, *args):
        self.submissions += 1
        if self.submissions <= self.crashes:
            future = Future()
            future.set_exception(RuntimeError("worker killed"))
            return future
        return _InlineFuture(fn, args)


class HangingExecutor(InlineExecutor):
    def submit(self, fn, *args):
        return Future()

    def shutdown(self, **kwargs):
        pass


# ----------------------------------------------------------------------
# Task identity
# ----------------------------------------------------------------------
class TestTaskKeys:
    def test_key_is_order_independent(self):
        a = task_key("m:r", {"x": 1, "y": 2})
        b = task_key("m:r", {"y": 2, "x": 1})
        assert a == b and len(a) == 64

    def test_key_separates_recipe_and_params(self):
        assert task_key("m:r", {"x": 1}) != task_key("m:r", {"x": 2})
        assert task_key("m:r", {"x": 1}) != task_key("m:s", {"x": 1})

    def test_task_id_defaults_to_key_prefix(self):
        task = Task(recipe="m:r", params={"x": 1})
        assert task.task_id == task.key[:16]
        labeled = Task(recipe="m:r", params={"x": 1}, task_id="lbl")
        assert labeled.task_id == "lbl" and labeled.key == task.key

    def test_non_json_params_refused(self):
        with pytest.raises(FabricError):
            canonical_params({"x": object()})

    def test_recipe_name_needs_module(self):
        with pytest.raises(FabricError):
            register_recipe("nomodule", _double)


# ----------------------------------------------------------------------
# Artifact store
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("k" * 64, {"a": [1, 2]})
        assert store.get("k" * 64) == {"a": [1, 2]}
        assert store.get("m" * 64) is None

    def test_corrupt_artifact_quarantined_and_missed(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = "k" * 64
        store.put(key, {"a": 1})
        bitflip_file(str(store.path(key)), bit=40)
        assert store.get(key) is None          # quarantine-and-recompute
        assert not store.path(key).exists()
        assert store.stats()["quarantined"]["entries"] == 1
        store.put(key, {"a": 1})               # recompute heals the store
        assert store.get(key) == {"a": 1}

    def test_truncated_artifact_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = "q" * 64
        store.put(key, {"a": 1})
        truncate_file(str(store.path(key)), keep=4)
        assert store.get(key) is None
        assert store.stats()["quarantined"]["entries"] == 1

    def test_gc(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put("a" * 64, 1)
        store.put("b" * 64, 2)
        truncate_file(str(store.path("a" * 64)))
        assert store.get("a" * 64) is None
        assert store.gc() == 1                 # quarantined only
        assert store.stats()["artifacts"]["entries"] == 1
        assert store.gc(everything=True) == 1
        assert store.stats()["artifacts"]["entries"] == 0

    def test_store_is_opt_in(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_FABRIC_STORE", raising=False)
        assert default_store_root() is None
        assert resolve_store("auto") is None
        monkeypatch.setenv("REPRO_FABRIC_STORE", str(tmp_path / "s"))
        assert default_store_root() == tmp_path / "s"
        assert resolve_store("auto").root == tmp_path / "s"
        assert resolve_store(None) is None

    def test_store_enable_keyword_uses_cache_root(self, monkeypatch,
                                                  tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_FABRIC_STORE", "1")
        assert default_store_root() == tmp_path / "cache" / "fabric"
        monkeypatch.setenv("REPRO_FABRIC_STORE", "0")
        assert default_store_root() is None


# ----------------------------------------------------------------------
# Unified checkpoint
# ----------------------------------------------------------------------
class TestCheckpoint:
    FP = {"seed": 1, "benchmarks": ["gzip"]}

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, "faults", self.FP, {"f0001": {"r": 1}})
        assert load_checkpoint(path, "faults", self.FP) == \
            {"f0001": {"r": 1}}
        header = read_checkpoint_header(path)
        assert header["driver"] == "faults"
        assert header["completed"] == 1
        assert header["verified"]

    def test_missing_starts_empty(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "no.json"), "faults",
                               self.FP) == {}

    @pytest.mark.parametrize("damage", [
        lambda p: truncate_file(p, keep=10),
        lambda p: bitflip_file(p, bit=100),
        lambda p: open(p, "w").write("{not json"),
    ])
    def test_corruption_quarantined(self, tmp_path, damage):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, "faults", self.FP, {"f0001": {"r": 1}})
        damage(path)
        assert load_checkpoint(path, "faults", self.FP) == {}
        assert not os.path.exists(path)
        assert os.path.exists(path + ".quarantined")

    def test_wrong_driver_or_fingerprint_refused(self, tmp_path):
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, "faults", self.FP, {})
        with pytest.raises(CheckpointError):
            load_checkpoint(path, "verify", self.FP)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, "faults", {"seed": 2})
        assert os.path.exists(path)            # user error: kept, not eaten

    def test_quarantine_helper_tolerates_missing_file(self, tmp_path):
        quarantine_checkpoint(str(tmp_path / "absent.json"), "test")


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class TestEngineSerial:
    def test_runs_everything_with_progress(self):
        fabric = Fabric("test", {"v": 1}, store=None, jobs=1)
        seen = []
        results = fabric.run(
            _tasks(5),
            on_result=lambda tid, res, done, total:
                seen.append((tid, done, total)),
        )
        assert results == {f"t{i:03d}": {"value": i * 2} for i in range(5)}
        assert [s[1] for s in seen] == [1, 2, 3, 4, 5]
        assert all(s[2] == 5 for s in seen)

    def test_batched_serial_matches_per_task(self):
        fabric = Fabric("test", {"v": 1}, store=None, jobs=1)
        assert fabric.run(_tasks(7), batch=3) == fabric.run(_tasks(7),
                                                            batch=1)

    def test_duplicate_delivery_coalesced(self):
        chaos = ChaosPlan(duplicates=("t001", "t003"))
        fabric = Fabric("test", {"v": 1}, store=None, jobs=1, chaos=chaos)
        computed = []
        results = fabric.run(
            _tasks(4),
            on_result=lambda tid, res, done, total: computed.append(tid),
        )
        assert len(results) == 4
        assert sorted(computed) == ["t000", "t001", "t002", "t003"]

    def test_serial_retry_recovers(self):
        _FLAKY_FAILURES.clear()
        fabric = Fabric("test", {"v": 1}, store=None, jobs=1, retries=2,
                        backoff=0.0)
        tasks = _tasks(3, recipe="tests.test_fabric:flaky", failures=2)
        assert fabric.run(tasks) == {f"t{i:03d}": {"value": i}
                                     for i in range(3)}

    def test_serial_fatal_fails_fast(self):
        _FLAKY_FAILURES.clear()
        fabric = Fabric("test", {"v": 1}, store=None, jobs=1, retries=5,
                        backoff=0.0)
        with pytest.raises(CampaignError):
            fabric.run(_tasks(2, recipe="tests.test_fabric:fatal"))

    def test_checkpoint_and_resume(self, tmp_path):
        path = str(tmp_path / "ck.json")

        class Stop(BaseException):
            pass

        def interrupt(tid, res, done, total):
            if done == 3:
                raise Stop()

        fabric = Fabric("test", {"v": 1}, store=None, jobs=1,
                        checkpoint_path=path, checkpoint_every=100)
        with pytest.raises(Stop):
            fabric.run(_tasks(6), on_result=interrupt)
        # The interrupt checkpointed what completed.
        assert len(load_checkpoint(path, "test", {"v": 1})) == 3

        resumed = Fabric("test", {"v": 1}, store=None, jobs=1,
                         checkpoint_path=path, resume=True)
        computed = []
        results = resumed.run(
            _tasks(6),
            on_result=lambda tid, res, done, total: computed.append(tid),
        )
        assert len(results) == 6
        assert len(computed) == 3              # only the missing half ran
        assert results == Fabric("test", {"v": 1}, store=None,
                                 jobs=1).run(_tasks(6))

    def test_cross_campaign_dedupe(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = Fabric("test", {"v": 1}, store=store, jobs=1)
        baseline = first.run(_tasks(4))
        recomputed = []
        second = Fabric("test", {"v": 2}, store=store, jobs=1)
        with enabled_scope(True):
            registry_mod.get_registry().reset()
            results = second.run(
                _tasks(4),
                on_result=lambda tid, res, done, total:
                    recomputed.append(tid),
            )
            snap = registry_mod.snapshot()
        assert results == baseline
        assert len(recomputed) == 4            # served fresh, via the store
        assert snap["fabric.dedupe.hits"]["value"] == 4

    def test_corrupt_store_entry_recomputed(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        fabric = Fabric("test", {"v": 1}, store=store, jobs=1)
        baseline = fabric.run(_tasks(2))
        task = _tasks(2)[0]
        truncate_file(str(store.path(task.key)), keep=3)
        again = Fabric("test", {"v": 1}, store=store, jobs=1).run(_tasks(2))
        assert again == baseline
        assert store.get(task.key) is not None   # healed by the recompute


class TestEnginePool:
    def test_pool_crash_retries_to_identical_results(self):
        serial = Fabric("test", {"v": 1}, store=None, jobs=1).run(_tasks(4))
        fabric = Fabric("test", {"v": 1}, store=None, jobs=2, retries=1,
                        backoff=0.0,
                        executor_factory=CrashingExecutor(crashes=2))
        assert fabric.run(_tasks(4)) == serial

    def test_pool_exhaustion_degrades_to_serial(self):
        serial = Fabric("test", {"v": 1}, store=None, jobs=1).run(_tasks(3))
        fabric = Fabric("test", {"v": 1}, store=None, jobs=2, retries=1,
                        backoff=0.0,
                        executor_factory=CrashingExecutor(crashes=100))
        with enabled_scope(True):
            registry_mod.get_registry().reset()
            results = fabric.run(_tasks(3))
            snap = registry_mod.snapshot()
        assert results == serial
        assert snap["fabric.degradations"]["value"] == 3

    def test_pool_fatal_raises_original_error(self):
        fabric = Fabric("test", {"v": 1}, store=None, jobs=2, retries=3,
                        backoff=0.0, executor_factory=InlineExecutor())
        with pytest.raises(CampaignError):
            fabric.run(_tasks(2, recipe="tests.test_fabric:fatal"))

    def test_pool_timeout_raises_after_checkpointing(self, tmp_path):
        path = str(tmp_path / "ck.json")
        fabric = Fabric("test", {"v": 1}, store=None, jobs=2, retries=0,
                        backoff=0.0, task_timeout=0.05,
                        checkpoint_path=path,
                        executor_factory=HangingExecutor())
        with pytest.raises(TaskTimeoutError):
            fabric.run(_tasks(3))
        assert os.path.exists(path)


class TestEngineKnobs:
    def test_fabric_env_fallbacks(self, monkeypatch):
        for var in ("REPRO_FABRIC_TIMEOUT", "REPRO_TASK_TIMEOUT",
                    "REPRO_FABRIC_RETRIES", "REPRO_TASK_RETRIES",
                    "REPRO_FABRIC_BACKOFF", "REPRO_FABRIC_CIRCUIT"):
            monkeypatch.delenv(var, raising=False)
        assert resolve_fabric_timeout(None) is None
        assert resolve_fabric_retries(None) == 1
        assert resolve_fabric_backoff(None) == 0.5
        assert resolve_circuit_threshold(None) == 3

        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "9")
        assert resolve_fabric_timeout(None) == 9.0
        monkeypatch.setenv("REPRO_FABRIC_TIMEOUT", "4")
        assert resolve_fabric_timeout(None) == 4.0
        assert resolve_fabric_timeout(2.0) == 2.0

        monkeypatch.setenv("REPRO_TASK_RETRIES", "5")
        assert resolve_fabric_retries(None) == 5
        monkeypatch.setenv("REPRO_FABRIC_RETRIES", "2")
        assert resolve_fabric_retries(None) == 2

        monkeypatch.setenv("REPRO_FABRIC_BACKOFF", "0")
        assert resolve_fabric_backoff(None) == 0.0
        monkeypatch.setenv("REPRO_FABRIC_CIRCUIT", "7")
        assert resolve_circuit_threshold(None) == 7


# ----------------------------------------------------------------------
# Supervision
# ----------------------------------------------------------------------
def _ret(value):
    return value


def _raise(exc):
    raise exc


class TestPoolSupervisor:
    def _specs(self, n):
        return {f"k{i}": (lambda attempt, i=i: (_ret, (i,)))
                for i in range(n)}

    def test_ok_outcomes_stream(self):
        supervisor = PoolSupervisor(2, executor_factory=InlineExecutor(),
                                    backoff_base=0.0)
        landed = []
        outcomes = supervisor.run(self._specs(3),
                                  on_ok=lambda k, v: landed.append((k, v)))
        assert {k: o.value for k, o in outcomes.items()} == \
            {"k0": 0, "k1": 1, "k2": 2}
        assert all(o.status == "ok" and o.attempts == 1
                   for o in outcomes.values())
        assert sorted(landed) == [("k0", 0), ("k1", 1), ("k2", 2)]

    def test_fatal_fails_fast_without_retries(self):
        supervisor = PoolSupervisor(2, executor_factory=InlineExecutor(),
                                    retries=5, backoff_base=0.0)
        specs = {"bad": lambda attempt: (_raise,
                                         (CampaignError("no retry"),))}
        outcomes = supervisor.run(specs)
        assert outcomes["bad"].status == "fatal"
        assert outcomes["bad"].attempts == 1     # satellite: no burn
        assert isinstance(outcomes["bad"].error, CampaignError)

    def test_retryable_exhaustion_gives_up(self):
        supervisor = PoolSupervisor(
            2, executor_factory=CrashingExecutor(crashes=100),
            retries=1, backoff_base=0.0,
        )
        outcomes = supervisor.run(self._specs(2))
        assert all(o.status == "gave_up" and o.attempts == 2
                   for o in outcomes.values())

    def test_timeout_not_safe_for_serial(self):
        supervisor = PoolSupervisor(2, executor_factory=HangingExecutor(),
                                    task_timeout=0.02, retries=1,
                                    backoff_base=0.0)
        outcomes = supervisor.run(self._specs(1))
        assert outcomes["k0"].status == "timeout"
        assert outcomes["k0"].attempts == 2

    def test_broken_factory_marks_everything_gave_up(self):
        def broken():
            raise OSError("fork failed")

        supervisor = PoolSupervisor(2, executor_factory=broken,
                                    backoff_base=0.0)
        outcomes = supervisor.run(self._specs(3))
        assert all(o.status == "gave_up" for o in outcomes.values())

    def test_callback_exception_propagates_unwrapped(self):
        class Deliberate(BaseException):
            pass

        supervisor = PoolSupervisor(2, executor_factory=InlineExecutor(),
                                    backoff_base=0.0)

        def boom(key, value):
            raise Deliberate()

        with pytest.raises(Deliberate):
            supervisor.run(self._specs(2), on_ok=boom)


# ----------------------------------------------------------------------
# Chaos plumbing (determinism of the injector itself)
# ----------------------------------------------------------------------
class TestChaosPlan:
    def test_pick_targets_is_deterministic(self):
        ids = [f"t{i:03d}" for i in range(10)]
        first = pick_targets(7, ids, 3)
        assert first == pick_targets(7, list(reversed(ids)), 3)
        assert len(first) == 3
        assert set(first) <= set(ids)

    def test_in_parent_kill_raises_instead_of_sigkill(self):
        plan = ChaosPlan(kills=(("t000", 1),))
        with pytest.raises(WorkerCrashError):
            plan.perturb("t000", 1)
        plan.perturb("t000", 2)                # other attempts untouched
        plan.perturb("t001", 1)

    def test_in_parent_hang_surfaces_as_crash(self):
        plan = ChaosPlan(hangs=(("t000", 1),), hang_seconds=99.0)
        with pytest.raises(WorkerCrashError):
            plan.perturb("t000", 1)
