"""Unit tests for instantiation directives."""

import pytest

from repro.core.directives import (
    AbsTarget,
    Lit,
    T_IMM,
    T_P1,
    T_P23,
    T_PC,
    T_RD,
    T_RS,
    T_RT,
    TrigField,
    validate_imm_directive,
    validate_reg_directive,
)
from repro.isa.registers import dise_reg


class TestDirectiveTypes:
    def test_trigfield_validates_name(self):
        with pytest.raises(ValueError):
            TrigField("bogus")

    def test_canonical_instances(self):
        assert T_RS == TrigField("rs")
        assert T_RT == TrigField("rt")
        assert T_RD == TrigField("rd")
        assert T_IMM == TrigField("imm")
        assert T_PC == TrigField("pc")
        assert T_P1 == TrigField("p1")
        assert T_P23 == TrigField("p23")

    def test_directives_hashable(self):
        assert len({Lit(1), Lit(1), Lit(2), T_RS, TrigField("rs")}) == 3

    def test_rendering(self):
        assert Lit(dise_reg(3)).render_reg() == "$dr3"
        assert Lit(26).render_imm() == "26"
        assert T_RS.render() == "T.RS"
        assert AbsTarget(0x400100).render() == "@0x400100"


class TestRegisterValidation:
    def test_user_and_dedicated_literals_ok(self):
        validate_reg_directive(Lit(5))
        validate_reg_directive(Lit(dise_reg(0)))

    def test_out_of_range_literal(self):
        with pytest.raises(ValueError):
            validate_reg_directive(Lit(99))

    def test_register_trigger_fields(self):
        for field in ("rs", "rt", "rd", "p1", "p2", "p3"):
            validate_reg_directive(TrigField(field))

    def test_imm_fields_rejected_in_reg_slots(self):
        with pytest.raises(ValueError):
            validate_reg_directive(T_IMM)
        with pytest.raises(ValueError):
            validate_reg_directive(T_PC)

    def test_abs_target_rejected_in_reg_slots(self):
        with pytest.raises(TypeError):
            validate_reg_directive(AbsTarget(0))


class TestImmediateValidation:
    def test_literal_and_target_ok(self):
        validate_imm_directive(Lit(26))
        validate_imm_directive(AbsTarget(0x400000))

    def test_imm_trigger_fields(self):
        for field in ("imm", "p1", "p2", "p3", "p23", "pc", "tag"):
            validate_imm_directive(TrigField(field))

    def test_reg_only_fields_rejected(self):
        for field in ("rs", "rt", "rd"):
            with pytest.raises(ValueError):
                validate_imm_directive(TrigField(field))

    def test_non_directive_rejected(self):
        with pytest.raises(TypeError):
            validate_imm_directive(42)
