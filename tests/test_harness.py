"""Tests for the experiment harness: tables, suite caching, experiments."""

import pytest

from repro.harness import (
    ALL_EXPERIMENTS,
    ResultTable,
    Suite,
    render_config_table,
    run_experiment,
)
from repro.harness.experiments import _machine


class TestResultTable:
    def make(self):
        table = ResultTable("t", ["a", "b"])
        table.set("x", "a", 2.0)
        table.set("x", "b", 4.0)
        table.set("y", "a", 8.0)
        return table

    def test_get_set(self):
        table = self.make()
        assert table.get("x", "a") == 2.0
        assert table.get("y", "b") is None

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            self.make().set("x", "zzz", 1.0)

    def test_geomean(self):
        table = self.make()
        assert table.geomean("a") == pytest.approx(4.0)
        assert table.geomean("b") == pytest.approx(4.0)

    def test_geomean_empty(self):
        table = ResultTable("t", ["a"])
        assert table.geomean("a") is None

    def test_render(self):
        text = self.make().render()
        assert "benchmark" in text and "geomean" in text
        assert "2.000" in text

    def test_render_missing_cells_as_dash(self):
        assert "-" in self.make().render()

    def test_as_dict(self):
        assert self.make().as_dict()["x"]["a"] == 2.0


class TestConfigTable:
    def test_reflects_defaults(self):
        text = render_config_table()
        assert "4-wide" in text
        assert "128-entry ROB" in text
        assert "32 KB" in text
        assert "16 KB" in text   # RT
        assert "flush + 30 cycles" in text


class TestSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return Suite(benchmarks=("mcf",), scale=0.2)

    def test_images_cached(self, suite):
        assert suite.image("mcf") is suite.image("mcf")

    def test_traces_cached(self, suite):
        assert suite.trace_plain("mcf") is suite.trace_plain("mcf")

    def test_cycles_memoised(self, suite):
        trace = suite.trace_plain("mcf")
        a = suite.cycles(trace, _machine())
        b = suite.cycles(trace, _machine())
        assert a is b

    def test_compression_cached(self, suite):
        from repro.acf.compression import DISE_OPTIONS

        a = suite.compression("mcf", DISE_OPTIONS, "DISE")
        b = suite.compression("mcf", DISE_OPTIONS, "DISE")
        assert a is b

    def test_all_experiments_registry(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig6_top", "fig6_cache", "fig6_width",
            "fig7_ratio", "fig7_perf", "fig7_rt",
            "fig8_perf", "fig8_rt",
        }


class TestExperimentsOnTinySuite:
    """Each experiment runs end-to-end on one scaled-down benchmark."""

    @pytest.fixture(scope="class")
    def suite(self):
        return Suite(benchmarks=("mcf",), scale=0.2)

    @pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
    def test_experiment_produces_full_table(self, suite, name):
        table = ALL_EXPERIMENTS[name](suite)
        assert table.rows == ["mcf"]
        for column in table.columns:
            value = table.get("mcf", column)
            assert value is not None and value > 0, (name, column)

    def test_run_experiment_wrapper(self):
        table = run_experiment("fig7_ratio", benchmarks=("mcf",), scale=0.2)
        assert 0 < table.get("mcf", "DISE") <= 1.0
