"""Persistent trace cache: keys, serialization round-trips, store/load."""

import pytest

from repro.acf.base import plain_installation
from repro.acf.mfi import attach_mfi
from repro.core.config import DiseConfig
from repro.harness.trace_cache import (
    SCHEMA_VERSION,
    LazyTrace,
    TraceCache,
    cycle_key,
    default_cache_root,
    deserialize_trace,
    image_fingerprint,
    machine_trace_key,
    open_cache,
    serialize_trace,
    trace_fingerprint,
    CacheError,
)
from repro.sim.config import MachineConfig
from repro.sim.cycle import simulate_trace
from repro.workloads.generator import generate_benchmark
from repro.workloads.specint import get_profile

FUNCTIONAL = DiseConfig(rt_perfect=True)
MAX_STEPS = 5_000_000


@pytest.fixture(scope="module")
def image():
    return generate_benchmark(get_profile("mcf"), scale=0.2)


@pytest.fixture(scope="module")
def installation(image):
    return attach_mfi(image, "dise3")


@pytest.fixture(scope="module")
def trace(installation):
    return installation.make_machine(FUNCTIONAL).run(max_steps=MAX_STEPS)


def _ops_equal(a, b):
    if len(a.ops) != len(b.ops):
        return False
    for x, y in zip(a.ops, b.ops):
        for slot in type(x).__slots__:
            if getattr(x, slot) != getattr(y, slot):
                return False
    return True


class TestSerialization:
    def test_round_trip_preserves_everything(self, trace):
        restored = deserialize_trace(serialize_trace(trace))
        assert _ops_equal(trace, restored)
        assert restored.outputs == trace.outputs
        assert restored.fault_code == trace.fault_code
        assert restored.halted == trace.halted
        assert restored.instructions == trace.instructions
        assert restored.app_instructions == trace.app_instructions
        assert restored.expansions == trace.expansions
        assert tuple(restored.final_regs) == tuple(trace.final_regs)
        assert restored.final_memory.snapshot() == \
            trace.final_memory.snapshot()

    def test_round_trip_replays_identically(self, trace):
        restored = deserialize_trace(serialize_trace(trace))
        config = MachineConfig()
        assert simulate_trace(restored, config, warm_start=True) == \
            simulate_trace(trace, config, warm_start=True)

    def test_corrupt_payload_raises_cache_error(self, trace):
        data = serialize_trace(trace)
        with pytest.raises(CacheError):
            deserialize_trace(data[: len(data) // 2])
        with pytest.raises(CacheError):
            deserialize_trace(b"definitely not zlib")

    def test_serialization_is_deterministic(self, trace):
        assert serialize_trace(trace) == serialize_trace(trace)


class TestKeys:
    def test_key_is_stable_across_rebuilds(self, image):
        inst_a = attach_mfi(image, "dise3")
        inst_b = attach_mfi(
            generate_benchmark(get_profile("mcf"), scale=0.2), "dise3"
        )
        key_a = machine_trace_key(inst_a, inst_a.make_machine(FUNCTIONAL),
                                  repr(FUNCTIONAL), MAX_STEPS)
        key_b = machine_trace_key(inst_b, inst_b.make_machine(FUNCTIONAL),
                                  repr(FUNCTIONAL), MAX_STEPS)
        assert key_a is not None and key_a == key_b

    def test_key_changes_with_image(self, installation):
        other_image = generate_benchmark(get_profile("gzip"), scale=0.2)
        other = attach_mfi(other_image, "dise3")
        key_a = machine_trace_key(
            installation, installation.make_machine(FUNCTIONAL),
            repr(FUNCTIONAL), MAX_STEPS,
        )
        key_b = machine_trace_key(other, other.make_machine(FUNCTIONAL),
                                  repr(FUNCTIONAL), MAX_STEPS)
        assert key_a != key_b

    def test_key_changes_with_productions(self, image):
        plain = plain_installation(image)
        mfi = attach_mfi(image, "dise3")
        key_plain = machine_trace_key(plain, plain.make_machine(FUNCTIONAL),
                                      repr(FUNCTIONAL), MAX_STEPS)
        key_mfi = machine_trace_key(mfi, mfi.make_machine(FUNCTIONAL),
                                    repr(FUNCTIONAL), MAX_STEPS)
        assert key_plain != key_mfi

    def test_key_changes_with_config_and_budget(self, installation):
        machine = installation.make_machine(FUNCTIONAL)
        base = machine_trace_key(installation, machine, repr(FUNCTIONAL),
                                 MAX_STEPS)
        other_cfg = machine_trace_key(
            installation, machine, repr(DiseConfig()), MAX_STEPS
        )
        other_steps = machine_trace_key(installation, machine,
                                        repr(FUNCTIONAL), MAX_STEPS + 1)
        assert len({base, other_cfg, other_steps}) == 3

    def test_ctrl_handlers_are_uncacheable(self, installation):
        machine = installation.make_machine(FUNCTIONAL)
        machine.control_handlers[99] = lambda m: None
        assert machine_trace_key(installation, machine, repr(FUNCTIONAL),
                                 MAX_STEPS) is None

    def test_image_fingerprint_sensitive_to_content(self, image):
        other = generate_benchmark(get_profile("gzip"), scale=0.2)
        assert image_fingerprint(image) != image_fingerprint(other)
        assert image_fingerprint(image) == image_fingerprint(
            generate_benchmark(get_profile("mcf"), scale=0.2)
        )

    def test_cycle_key_separates_configs(self):
        a = cycle_key("digest", repr(MachineConfig()), True)
        b = cycle_key("digest", repr(MachineConfig(width=8)), True)
        c = cycle_key("digest", repr(MachineConfig()), False)
        assert len({a, b, c}) == 3

    def test_trace_fingerprint_memoised_and_stable(self, trace):
        trace.cache_key = None
        trace._fingerprint = None
        first = trace_fingerprint(trace)
        assert trace_fingerprint(trace) == first
        trace.cache_key = "explicit-digest"
        assert trace_fingerprint(trace) == "explicit-digest"
        trace.cache_key = None
        trace._fingerprint = None


class TestTraceCacheStore:
    def test_store_load_round_trip(self, tmp_path, trace):
        cache = TraceCache(tmp_path)
        cache.store_trace("d1", trace)
        loaded = cache.load_trace("d1")
        assert loaded is not None and _ops_equal(trace, loaded)
        assert cache.load_trace("missing") is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path, trace):
        cache = TraceCache(tmp_path)
        cache.store_trace("d1", trace)
        cache.trace_path("d1").write_bytes(b"garbage")
        assert cache.load_trace("d1") is None

    def test_cycle_results_round_trip(self, tmp_path, trace):
        cache = TraceCache(tmp_path)
        result = simulate_trace(trace, MachineConfig(), warm_start=True)
        cache.store_cycles("c1", result)
        assert cache.load_cycles("c1") == result
        assert cache.load_cycles("missing") is None

    def test_stats_and_clear(self, tmp_path, trace):
        cache = TraceCache(tmp_path)
        cache.store_trace("d1", trace)
        cache.store_cycles(
            "c1", simulate_trace(trace, MachineConfig(), warm_start=True)
        )
        stats = cache.stats()
        assert stats["traces"]["entries"] == 1
        assert stats["cycles"]["entries"] == 1
        assert stats["traces"]["bytes"] > 0
        assert cache.clear() == 2
        stats = cache.stats()
        assert stats["traces"]["entries"] == 0
        assert stats["cycles"]["entries"] == 0


class TestLazyTrace:
    def test_defers_until_attribute_access(self, tmp_path, trace):
        cache = TraceCache(tmp_path)
        cache.store_trace("d1", trace)
        lazy = LazyTrace(cache, "d1")
        assert lazy.cache_key == "d1"
        assert trace_fingerprint(lazy) == "d1"
        assert lazy._real is None           # nothing deserialized yet
        assert lazy.instructions == trace.instructions
        assert lazy._real is not None
        assert _ops_equal(trace, lazy.materialize())

    def test_replays_identically_to_eager_trace(self, tmp_path, trace):
        cache = TraceCache(tmp_path)
        cache.store_trace("d1", trace)
        lazy = LazyTrace(cache, "d1")
        config = MachineConfig()
        assert simulate_trace(lazy, config, warm_start=True) == \
            simulate_trace(trace, config, warm_start=True)

    def test_attribute_writes_reach_the_real_trace(self, tmp_path, trace):
        cache = TraceCache(tmp_path)
        cache.store_trace("d1", trace)
        lazy = LazyTrace(cache, "d1")
        lazy._warm_states = {"sig": "state"}
        assert lazy.materialize()._warm_states == {"sig": "state"}

    def test_missing_entry_uses_recompute_fallback(self, tmp_path, trace):
        cache = TraceCache(tmp_path)
        lazy = LazyTrace(cache, "gone", recompute=lambda: trace)
        assert _ops_equal(trace, lazy.materialize())
        # The recomputed trace was re-stored under the key.
        assert cache.has_trace("gone")

    def test_missing_entry_without_fallback_raises(self, tmp_path):
        lazy = LazyTrace(TraceCache(tmp_path), "gone")
        with pytest.raises(CacheError):
            lazy.materialize()


class TestEnvironment:
    def test_disabled_values(self, monkeypatch):
        for value in ("0", "off", "none", "  "):
            monkeypatch.setenv("REPRO_TRACE_CACHE", value)
            assert default_cache_root() is None
            assert open_cache("auto") is None

    def test_env_path_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "tc"))
        root = default_cache_root()
        assert root == tmp_path / "tc"
        cache = open_cache("auto")
        assert cache is not None and cache.root == root

    def test_explicit_path_and_passthrough(self, tmp_path):
        cache = open_cache(tmp_path)
        assert isinstance(cache, TraceCache)
        assert open_cache(cache) is cache
        assert open_cache(None) is None

    def test_schema_version_guards_payloads(self, trace):
        import pickle
        import zlib

        payload = pickle.loads(zlib.decompress(serialize_trace(trace)))
        assert payload["schema"] == SCHEMA_VERSION
        payload["schema"] = SCHEMA_VERSION + 1
        stale = zlib.compress(pickle.dumps(payload, protocol=4), level=1)
        with pytest.raises(CacheError):
            deserialize_trace(stale)


class TestSelfHealing:
    """Corrupt entries are quarantined and regenerated, not served."""

    def test_frame_round_trip_and_detection(self):
        from repro.harness.trace_cache import frame_payload, unframe_payload

        payload = b"some cached payload"
        framed = frame_payload(payload)
        assert unframe_payload(framed) == payload
        with pytest.raises(CacheError):
            unframe_payload(framed[:-3])            # truncated payload
        with pytest.raises(CacheError):
            unframe_payload(b"not a cache entry")   # no header
        flipped = bytearray(framed)
        flipped[len(flipped) // 2] ^= 0x10
        with pytest.raises(CacheError):
            unframe_payload(bytes(flipped))         # bit rot

    def test_truncated_entry_quarantined(self, tmp_path, trace):
        cache = TraceCache(tmp_path)
        cache.store_trace("d1", trace)
        path = cache.trace_path("d1")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.load_trace("d1") is None
        assert not path.exists()                    # moved aside, not served
        assert cache.stats()["quarantined"]["entries"] == 1

    def test_bitflipped_entry_quarantined(self, tmp_path, trace):
        cache = TraceCache(tmp_path)
        cache.store_trace("d1", trace)
        path = cache.trace_path("d1")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x40
        path.write_bytes(bytes(data))
        assert cache.load_trace("d1") is None
        assert cache.stats()["quarantined"]["entries"] == 1

    def test_corrupt_cycles_entry_quarantined(self, tmp_path, trace):
        cache = TraceCache(tmp_path)
        cache.store_cycles(
            "c1", simulate_trace(trace, MachineConfig(), warm_start=True)
        )
        path = cache.cycle_path("c1")
        path.write_bytes(b"rotten")
        assert cache.load_cycles("c1") is None
        assert cache.stats()["quarantined"]["entries"] == 1

    def test_regeneration_matches_cold_run(self, tmp_path):
        """End to end: corrupting a cache entry must not change results."""
        from repro.harness.parallel import TraceTask, run_tasks

        cache = TraceCache(tmp_path)
        task = TraceTask("mcf", 0.05, "plain")
        plan = [(task, [MachineConfig()])]
        cold = run_tasks(plan, jobs=1, cache=cache)
        digest = cold[task][0]
        path = cache.trace_path(digest)
        data = bytearray(path.read_bytes())
        data[len(data) // 3] ^= 0x01
        path.write_bytes(bytes(data))
        healed = run_tasks(plan, jobs=1, cache=cache)
        assert serialize_trace(healed[task][1]) == \
            serialize_trace(cold[task][1])
        assert healed[task][2] == cold[task][2]
        assert cache.has_trace(digest)              # re-stored after healing
        assert cache.stats()["quarantined"]["entries"] == 1

    def test_cache_error_is_structured(self):
        from repro.errors import CacheCorruptionError, HarnessError

        assert issubclass(CacheError, CacheCorruptionError)
        assert issubclass(CacheError, HarnessError)
        assert issubclass(CacheError, RuntimeError)   # legacy base


class TestSchemaMigration:
    """Entries from other schema versions are never misread.

    Older entries (pre-SoA ``RDTC2`` frames) read as misses and are
    quarantined so the caller regenerates them; entries from a *newer*
    tool survive ``clear()`` and show up in ``stats()`` instead of being
    treated as garbage.
    """

    @staticmethod
    def _write_framed(path, magic, payload=b"foreign schema payload"):
        import hashlib

        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(
            magic + hashlib.sha256(payload).digest()[:16] + payload
        )

    def test_v2_entry_quarantined_and_regenerated(self, tmp_path, trace):
        cache = TraceCache(tmp_path)
        path = cache.trace_path("d1")
        self._write_framed(path, b"RDTC2\n")
        assert cache.load_trace("d1") is None      # miss, never misread
        assert not path.exists()                   # moved aside
        assert cache.stats()["quarantined"]["entries"] == 1
        cache.store_trace("d1", trace)             # regenerated entry wins
        loaded = cache.load_trace("d1")
        assert loaded is not None and _ops_equal(trace, loaded)

    def test_future_entry_survives_clear(self, tmp_path, trace):
        cache = TraceCache(tmp_path)
        cache.store_trace("now", trace)
        future = cache.trace_path("future")
        self._write_framed(future, b"RDTC9\n")
        assert cache.clear() == 1                  # current entry only
        assert future.exists(), "newer-schema entry is live data, not garbage"
        assert not cache.trace_path("now").exists()

    def test_stats_break_down_by_schema_version(self, tmp_path, trace):
        cache = TraceCache(tmp_path)
        cache.store_trace("d1", trace)
        self._write_framed(cache.trace_path("old"), b"RDTC2\n")
        (cache.root / "traces" / "junk.trc").write_bytes(b"not framed")
        stats = cache.stats()
        assert stats["schema_version"] == SCHEMA_VERSION
        assert stats["traces"]["by_schema"] == {
            "2": 1, str(SCHEMA_VERSION): 1, "unknown": 1,
        }
