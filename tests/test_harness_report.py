"""Tests for the markdown report generator."""

import pytest

from repro.harness import Suite, build_report, table_to_markdown
from repro.harness.report import PAPER_CLAIMS
from repro.harness.tables import ResultTable


class TestTableMarkdown:
    def make(self):
        table = ResultTable("t", ["a", "b"])
        table.set("x", "a", 1.5)
        table.set("x", "b", 3.0)
        return table

    def test_structure(self):
        text = table_to_markdown(self.make())
        lines = text.splitlines()
        assert lines[0] == "| benchmark | a | b |"
        assert lines[1].startswith("|---")
        assert "| x | 1.500 | 3.000 |" in text
        assert "**geomean**" in text

    def test_missing_cells(self):
        table = ResultTable("t", ["a", "b"])
        table.set("x", "a", 1.0)
        assert "| x | 1.000 | - |" in table_to_markdown(table)


class TestReport:
    def test_claims_cover_all_experiments(self):
        from repro.harness import ALL_EXPERIMENTS

        assert set(PAPER_CLAIMS) == set(ALL_EXPERIMENTS)

    def test_report_contents(self):
        suite = Suite(benchmarks=("mcf",), scale=0.1)
        report = build_report(suite, experiments=("fig7_ratio",))
        assert "# DISE reproduction" in report
        assert "Simulated machine" in report
        assert "Figure 7 (top)" in report
        assert "*Paper:*" in report
        assert "| mcf |" in report
