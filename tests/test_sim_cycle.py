"""Unit tests for the timing model: invariants, not absolute numbers."""

import pytest

from repro.core.config import DiseConfig
from repro.core.controller import DiseController
from repro.core.language import parse_productions
from repro.sim.config import KB, MachineConfig
from repro.sim.cycle import CycleSimulator, simulate_trace
from repro.sim.functional import Machine, run_program
from repro.sim.trace import OpColumns

from conftest import MFI_SOURCE, build_loop_program


def loop_trace(iterations=50):
    return run_program(build_loop_program(iterations=iterations))


def mfi_trace(iterations=50):
    image = build_loop_program(iterations=iterations)
    from repro.acf.mfi import attach_mfi

    return attach_mfi(image, "dise3").run()


class TestBasicInvariants:
    def test_empty_trace(self):
        trace = run_program(build_loop_program(iterations=1))
        trace.columns = OpColumns()
        assert simulate_trace(trace).cycles == 0

    def test_cycles_at_least_instructions_over_width(self):
        trace = loop_trace()
        result = simulate_trace(trace, MachineConfig(width=4))
        assert result.cycles >= len(trace.ops) / 4

    def test_ipc_bounded_by_width(self):
        trace = loop_trace()
        for width in (1, 2, 4):
            result = simulate_trace(trace, MachineConfig(width=width))
            assert result.ipc <= width + 1e-9

    def test_wider_machine_not_slower(self):
        trace = loop_trace()
        narrow = simulate_trace(trace, MachineConfig(width=2))
        wide = simulate_trace(trace, MachineConfig(width=8))
        assert wide.cycles <= narrow.cycles

    def test_more_instructions_cost_more(self):
        short = simulate_trace(loop_trace(iterations=20))
        long = simulate_trace(loop_trace(iterations=200))
        assert long.cycles > short.cycles

    def test_perfect_icache_not_slower(self):
        trace = loop_trace()
        real = simulate_trace(trace, MachineConfig())
        perfect = simulate_trace(trace, MachineConfig().with_il1_size(None))
        assert perfect.cycles <= real.cycles
        assert perfect.il1_misses == 0

    def test_stats_populated(self):
        trace = loop_trace()
        result = simulate_trace(trace, MachineConfig())
        assert result.instructions == len(trace.ops)
        assert result.cond_branches > 0
        assert result.dl1_accesses > 0


class TestDisePlacements:
    def make(self, placement, **dise_kwargs):
        return MachineConfig(dise=DiseConfig(placement=placement,
                                             **dise_kwargs))

    def test_free_is_cheapest(self):
        trace = mfi_trace()
        free = simulate_trace(trace, self.make("free", rt_perfect=True))
        stall = simulate_trace(trace, self.make("stall", rt_perfect=True))
        pipe = simulate_trace(trace, self.make("pipe", rt_perfect=True))
        assert free.cycles <= stall.cycles
        assert free.cycles <= pipe.cycles

    def test_stall_charges_per_expansion(self):
        trace = mfi_trace()
        result = simulate_trace(trace, self.make("stall", rt_perfect=True))
        assert result.expansion_stalls == result.expansions > 0

    def test_placement_irrelevant_without_expansions(self):
        trace = loop_trace()
        free = simulate_trace(trace, self.make("free"))
        stall = simulate_trace(trace, self.make("stall"))
        assert free.cycles == stall.cycles, (
            "zero performance impact on ACF-free code"
        )

    def test_rt_misses_cost_cycles(self):
        trace = mfi_trace()
        perfect = simulate_trace(trace, self.make("pipe", rt_perfect=True))
        # A 4-entry RT can't hold the 4-instruction MFI sequence plus
        # anything else reliably across both sequences.
        tiny = simulate_trace(
            trace, self.make("pipe", rt_entries=4, rt_assoc=1)
        )
        assert tiny.rt_miss_stalls >= perfect.rt_miss_stalls
        assert tiny.cycles >= perfect.cycles

    def test_composed_miss_costs_more(self):
        trace = mfi_trace()
        cheap = simulate_trace(trace, self.make(
            "pipe", rt_entries=4, rt_assoc=1, simple_miss_cycles=30,
        ))
        # Same geometry but pretend every fill composes (150 cycles): we
        # model this by raising the simple-miss latency, as composed fills
        # are flagged per-spec.
        dear = simulate_trace(trace, self.make(
            "pipe", rt_entries=4, rt_assoc=1, simple_miss_cycles=150,
        ))
        if cheap.rt_miss_stalls:
            assert dear.cycles > cheap.cycles


class TestWarmStart:
    def test_warm_start_removes_cold_misses(self):
        trace = loop_trace()
        cold = simulate_trace(trace, MachineConfig())
        warm = simulate_trace(trace, MachineConfig(), warm_start=True)
        assert warm.il1_misses <= cold.il1_misses
        assert warm.cycles <= cold.cycles

    def test_warm_start_determinism(self):
        trace = loop_trace()
        a = simulate_trace(trace, MachineConfig(), warm_start=True)
        b = simulate_trace(trace, MachineConfig(), warm_start=True)
        assert a.cycles == b.cycles


class TestReplacementBranchPrediction:
    def test_flag_changes_mispredicts(self):
        from repro.acf.compression import DISE_OPTIONS, compress_image
        from repro.workloads import generate_by_name

        image = generate_by_name("mcf", scale=0.2)
        result = compress_image(image, DISE_OPTIONS)
        assert result.production_set is not None
        trace = result.installation().run()
        on = MachineConfig()
        off = MachineConfig(predict_replacement_branches=False)
        with_pred = simulate_trace(trace, on, warm_start=True)
        without = simulate_trace(trace, off, warm_start=True)
        assert without.mispredicts >= with_pred.mispredicts
