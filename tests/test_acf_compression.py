"""Tests for the compression ACF: dictionary building, transformation,
decompression identity, and the Figure 7 feature variants."""

import pytest

from repro.acf.compression import (
    CompressionError,
    CompressionOptions,
    DEDICATED_OPTIONS,
    DISE_OPTIONS,
    FIGURE7_VARIANTS,
    compress_image,
    enumerate_candidates,
    make_template,
    select_dictionary,
)
from repro.core.directives import Lit, TrigField
from repro.isa.build import (
    Imm,
    addq,
    bis,
    bne,
    bsr,
    halt,
    jsr,
    lda,
    ldq,
    out,
    ret,
    stq,
    subq,
)
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import Opcode
from repro.program.builder import ProgramBuilder
from repro.sim.functional import run_program
from repro.workloads import generate_by_name

from conftest import A0, A1, T0, T1, ZERO, build_loop_program


def redundant_program(copies=6, iterations=3):
    """A program with several instances of the same idiom, with varying
    registers/immediates (the Figure 4 situation)."""
    b = ProgramBuilder()
    b.alloc_data("buf", 64, init=list(range(16)))
    b.label("main")
    b.load_address(A1, "buf")
    b.emit(bis(ZERO, Imm(iterations), T0))
    b.label("loop")
    regs = [1, 2, 3, 4, 5, 6, 7, 16, 17, 18]
    for i in range(copies):
        r = regs[i % len(regs)]
        b.emit(ldq(r, 8 * (i % 4), A1))
        b.emit(addq(r, Imm(1 + (i % 3)), r))
        b.emit(stq(r, 8 * (i % 4), A1))
    b.emit(subq(T0, Imm(1), T0))
    b.emit(bne(T0, "loop"))
    b.emit(ldq(A0, 0, A1))
    b.emit(out(A0))
    b.emit(halt())
    b.set_entry("main")
    return b.build()


class TestTemplates:
    def test_parameterized_template_shares_across_registers(self):
        seq_a = [ldq(1, 8, 2), addq(1, Imm(1), 1)]
        seq_b = [ldq(5, 8, 6), addq(5, Imm(1), 5)]
        ta, pa = make_template(seq_a, DISE_OPTIONS)
        tb, pb = make_template(seq_b, DISE_OPTIONS)
        assert ta == tb, "same shape, different registers: one entry"
        assert pa != pb

    def test_parameterized_template_shares_small_immediates(self):
        # Figure 4: lda r, 8(r) and lda r, -8(r) share an entry.  With three
        # distinct registers the registers-first assignment exhausts the
        # slots, so the immediate-first strategy provides the merge.
        ta, pa = make_template([lda(1, 8, 1), ldq(2, 0, 3)], DISE_OPTIONS,
                               strategy="imms_first")
        tb, pb = make_template([lda(4, -8, 4), ldq(2, 0, 3)], DISE_OPTIONS,
                               strategy="imms_first")
        assert ta == tb
        assert pa != pb

    def test_strategies_disagree_when_operands_exceed_slots(self):
        seq = [lda(1, 8, 1), ldq(2, 0, 3)]
        regs_first, _ = make_template(seq, DISE_OPTIONS, "regs_first")
        imms_first, _ = make_template(seq, DISE_OPTIONS, "imms_first")
        assert regs_first != imms_first

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            make_template([addq(1, 2, 3), addq(1, 2, 3)], DISE_OPTIONS,
                          strategy="random")

    def test_large_immediates_stay_literal(self):
        ta, _ = make_template([ldq(1, 800, 2), addq(1, 2, 3)], DISE_OPTIONS)
        tb, _ = make_template([ldq(1, 808, 2), addq(1, 2, 3)], DISE_OPTIONS)
        assert ta != tb, "offsets beyond the 5-bit parameter cannot merge"

    def test_unparameterized_requires_exact_match(self):
        opts = DEDICATED_OPTIONS.with_changes(min_seq_len=2)
        ta, _ = make_template([ldq(1, 8, 2), addq(1, Imm(1), 1)], opts)
        tb, _ = make_template([ldq(5, 8, 6), addq(5, Imm(1), 5)], opts)
        assert ta != tb

    def test_branch_only_last_and_only_with_feature(self):
        seq = [subq(1, Imm(1), 1), bne(1, -4)]
        assert make_template(seq, DISE_OPTIONS) is not None
        no_branches = DISE_OPTIONS.with_changes(compress_branches=False)
        assert make_template(seq, no_branches) is None

    def test_branch_template_uses_p23(self):
        template, _ = make_template(
            [subq(1, Imm(1), 1), bne(1, -4)], DISE_OPTIONS
        )
        assert template[-1].imm == TrigField("p23")

    def test_calls_and_jumps_excluded(self):
        assert make_template([addq(1, 2, 3), bsr(26, 0)], DISE_OPTIONS) is None
        assert make_template([addq(1, 2, 3), ret(26)], DISE_OPTIONS) is None
        assert make_template([halt()],
                             DISE_OPTIONS.with_changes(min_seq_len=1)) is None


class TestDictionarySelection:
    def test_redundant_code_found(self):
        image = redundant_program()
        entries = select_dictionary(image, DISE_OPTIONS)
        assert entries, "the repeated idiom must yield a dictionary entry"
        best = entries[0]
        assert len(best.occurrences) >= 3

    def test_selected_occurrences_disjoint(self):
        image = redundant_program()
        entries = select_dictionary(image, DISE_OPTIONS)
        claimed = set()
        for entry in entries:
            for occ in entry.occurrences:
                span = set(range(occ.start, occ.start + occ.length))
                assert not span & claimed
                claimed |= span

    def test_dictionary_size_cap(self):
        image = generate_by_name("bzip2", scale=0.2)
        capped = DISE_OPTIONS.with_changes(max_dict_entries=3)
        entries = select_dictionary(image, capped)
        assert len(entries) <= 3

    def test_candidates_respect_blocks(self):
        image = redundant_program()
        from repro.program.blocks import find_basic_blocks

        block_of = {}
        for block in find_basic_blocks(image):
            for index in block.indices():
                block_of[index] = block.block_id
        for occurrences in enumerate_candidates(image, DISE_OPTIONS).values():
            for occ in occurrences:
                blocks = {
                    block_of[i]
                    for i in range(occ.start, occ.start + occ.length)
                }
                assert len(blocks) == 1, "candidates must not straddle blocks"


class TestCompressionTransform:
    def test_identity_on_small_program(self):
        image = redundant_program()
        plain = run_program(image)
        result = compress_image(image, DISE_OPTIONS)
        assert result.text_ratio < 1.0
        decompressed = result.installation().run()
        assert decompressed.outputs == plain.outputs
        assert decompressed.final_memory == plain.final_memory

    def test_identity_for_all_variants_on_benchmark(self):
        image = generate_by_name("bzip2", scale=0.2)
        plain = run_program(image, record_trace=False)
        for name, options in FIGURE7_VARIANTS:
            result = compress_image(image, options)
            run = result.installation().run(record_trace=False)
            assert run.outputs == plain.outputs, name
            assert not run.faulted, name

    def test_compressed_text_accounting(self):
        image = redundant_program()
        result = compress_image(image, DISE_OPTIONS)
        assert result.original_text_bytes == image.text_size
        assert result.compressed_text_bytes == result.image.text_size
        expected = (image.text_size
                    - result.instructions_removed * INSTRUCTION_BYTES)
        assert result.compressed_text_bytes == expected

    def test_dictionary_bytes(self):
        image = redundant_program()
        result = compress_image(image, DISE_OPTIONS)
        total_instrs = sum(
            len(spec) for spec in result.production_set.replacements.values()
        )
        assert result.dictionary_bytes == total_instrs * 8

    def test_two_byte_codewords_layout(self):
        image = generate_by_name("mcf", scale=0.2)
        result = compress_image(image, DEDICATED_OPTIONS)
        assert not result.image.uniform_size()
        # Addresses remain strictly increasing and match sizes.
        addrs, sizes = result.image.addresses, result.image.sizes
        for i in range(1, len(addrs)):
            assert addrs[i] == addrs[i - 1] + sizes[i - 1]

    def test_compressing_twice_rejected(self):
        image = generate_by_name("mcf", scale=0.2)
        result = compress_image(image, DEDICATED_OPTIONS)
        with pytest.raises(CompressionError):
            compress_image(result.image, DEDICATED_OPTIONS)

    def test_branch_compression_preserves_loops(self):
        image = redundant_program(iterations=7)
        result = compress_image(image, DISE_OPTIONS)
        swallowed_branches = any(
            any(r.opcode is not None and r.opcode.is_branch
                for r in spec.instrs)
            for spec in result.production_set.replacements.values()
        ) if result.production_set else False
        run = result.installation().run()
        assert run.outputs == run_program(image).outputs
        # (If a branch was compressed, the loop still iterated correctly.)

    def test_ratios_ordering_matches_feature_sets(self):
        image = generate_by_name("gzip", scale=0.2)
        by_name = {}
        for name, options in FIGURE7_VARIANTS:
            by_name[name] = compress_image(image, options).text_ratio
        assert by_name["DISE"] <= by_name["+3param"] <= by_name["+8byteDE"]
        assert by_name["dedicated"] <= by_name["-1insn"] <= by_name["-2byteCW"]
