"""PC-scoped patterns — the attribute-matching extension of Section 2.1.

The paper: "Currently, patterns are only defined on instruction bits.  We
leave open the possibility of matching other attributes (e.g., PC)."  This
reproduction implements the PC case: a pattern may carry a half-open
address range, making region-scoped ACFs expressible ("trace stores, but
only inside this one function").
"""

import pytest

from repro.acf.tracing import DR_CURSOR, sat_production_set
from repro.core.controller import DiseController
from repro.core.pattern import PatternSpec, match_stores
from repro.core.production import ProductionSet
from repro.core.replacement import identity_replacement
from repro.isa.build import Imm, addq, bis, bsr, halt, out, ret, stq
from repro.isa.opcodes import OpClass
from repro.program.builder import ProgramBuilder
from repro.sim.functional import Machine, run_program

from conftest import A0, A1, RA, T0, V0, ZERO


class TestPatternSpecPcRange:
    def test_validation(self):
        with pytest.raises(ValueError):
            PatternSpec(opclass=OpClass.LOAD, pc_lo=100)     # hi missing
        with pytest.raises(ValueError):
            PatternSpec(opclass=OpClass.LOAD, pc_lo=8, pc_hi=8)

    def test_matches_pc(self):
        pattern = PatternSpec(opclass=OpClass.STORE, pc_lo=0x1000,
                              pc_hi=0x2000)
        assert pattern.matches_pc(0x1000)
        assert pattern.matches_pc(0x1FFC)
        assert not pattern.matches_pc(0x2000)
        assert not pattern.matches_pc(0x0FFC)

    def test_unscoped_matches_everywhere(self):
        assert match_stores().matches_pc(0)
        assert match_stores().matches_pc(1 << 40)

    def test_pc_range_adds_specificity(self):
        scoped = PatternSpec(opclass=OpClass.STORE, pc_lo=0, pc_hi=64)
        assert scoped.specificity > match_stores().specificity

    def test_render_and_hash(self):
        scoped = PatternSpec(opclass=OpClass.STORE, pc_lo=0x10, pc_hi=0x20)
        assert "T.PC in [0x10, 0x20)" in scoped.render()
        assert scoped != match_stores()
        assert hash(scoped) != hash(match_stores()) or scoped == match_stores()


def two_function_program():
    """main stores via f_traced and f_plain; both write to the same array."""
    b = ProgramBuilder()
    b.alloc_data("buf", 8)
    b.label("main")
    b.load_address(A1, "buf")
    b.emit(bis(ZERO, Imm(3), T0))
    b.emit(bsr(RA, "f_traced"))
    b.emit(bsr(RA, "f_plain"))
    b.emit(bsr(RA, "f_traced"))
    b.emit(out(V0))
    b.emit(halt())
    b.label("f_traced")
    b.emit(stq(T0, 0, A1))
    b.emit(addq(V0, Imm(1), V0))
    b.emit(ret(RA))
    b.label("f_plain")
    b.emit(stq(T0, 8, A1))
    b.emit(addq(V0, Imm(1), V0))
    b.emit(ret(RA))
    b.set_entry("main")
    return b.build()


class TestRegionScopedAcf:
    def region(self, image, start_label, end_label):
        return (image.symbol_address(start_label),
                image.symbol_address(end_label))

    def test_stores_traced_only_inside_region(self):
        from repro.acf.tracing import SAT_SOURCE, attach_sat
        from repro.core.language import parse_productions

        image = two_function_program()
        lo, hi = self.region(image, "f_traced", "f_plain")

        # Build a region-scoped SAT by hand: the store pattern carries the
        # PC range of f_traced.
        base = parse_productions(SAT_SOURCE, name="sat-region")
        pset = ProductionSet("sat-region")
        spec = base.replacement(base.productions[0].seq_id)
        pset.define(
            PatternSpec(opclass=OpClass.STORE, pc_lo=lo, pc_hi=hi), spec
        )
        controller = DiseController()
        controller.install(pset)
        machine = Machine(image, controller=controller)
        buffer_base = image.data_base + image.data_size + 4096
        machine.regs[DR_CURSOR] = buffer_base
        result = machine.run()

        # f_traced ran twice, f_plain once: exactly two traced addresses.
        traced = (machine.regs[DR_CURSOR] - buffer_base) // 8
        assert traced == 2
        assert result.final_memory.read(buffer_base) == image.data_base
        # f_plain's store executed but was not traced.
        assert result.final_memory.read(image.data_base + 8) != 0

    def test_scoped_beats_unscoped_inside_region(self):
        """A scoped identity production shields its region from a global
        ACF — negative specification by address."""
        image = two_function_program()
        lo, hi = self.region(image, "f_traced", "f_plain")
        pset = ProductionSet("shield")
        # Global: count all stores in $dr7.
        from repro.core.directives import Lit
        from repro.core.replacement import (
            TRIGGER_INSN, ReplacementInstr, ReplacementSpec,
        )
        from repro.isa.opcodes import Opcode
        from repro.isa.registers import dise_reg

        count = ReplacementSpec(instrs=(
            ReplacementInstr(opcode=Opcode.ADDQ, ra=Lit(dise_reg(7)),
                             imm=Lit(1), rc=Lit(dise_reg(7))),
            TRIGGER_INSN,
        ))
        pset.define(match_stores(), count)
        pset.define(PatternSpec(opclass=OpClass.STORE, pc_lo=lo, pc_hi=hi),
                    identity_replacement())
        controller = DiseController()
        controller.install(pset)
        machine = Machine(image, controller=controller)
        machine.run()
        # Only f_plain's single store was counted.
        assert machine.regs[dise_reg(7)] == 1
