"""Unit tests for basic-block discovery."""

from repro.isa.build import Imm, addq, bne, br, bsr, halt, jsr, nop, ret
from repro.program.blocks import find_basic_blocks, find_leaders
from repro.program.builder import ProgramBuilder


def build(emit):
    b = ProgramBuilder()
    emit(b)
    return b.build()


class TestLeaders:
    def test_entry_is_leader(self):
        image = build(lambda b: b.emit_many([nop(), halt()]))
        assert 0 in find_leaders(image)

    def test_branch_target_and_fallthrough_are_leaders(self):
        def emit(b):
            b.emit(nop())            # 0
            b.emit(bne(1, "skip"))   # 1
            b.emit(nop())            # 2  (fall-through leader)
            b.label("skip")          # 3  (target leader)
            b.emit(halt())
        image = build(emit)
        leaders = find_leaders(image)
        assert {0, 2, 3} <= set(leaders)

    def test_symbols_are_leaders(self):
        def emit(b):
            b.emit(nop())
            b.label("func")
            b.emit(ret(26))
        image = build(emit)
        assert image.symbols["func"] in find_leaders(image)

    def test_halt_ends_block(self):
        def emit(b):
            b.emit(halt())
            b.emit(nop())
        image = build(emit)
        assert 1 in find_leaders(image)


class TestBlocks:
    def test_straightline_single_block(self):
        image = build(lambda b: b.emit_many([nop(), addq(1, Imm(1), 1), halt()]))
        blocks = find_basic_blocks(image)
        assert len(blocks) == 1
        assert (blocks[0].start, blocks[0].end) == (0, 3)
        assert len(blocks[0]) == 3

    def test_loop_blocks_and_successors(self):
        def emit(b):
            b.label("main")
            b.emit(nop())            # block 0
            b.label("loop")
            b.emit(addq(1, Imm(1), 1))
            b.emit(bne(1, "loop"))   # block 1 -> {loop, next}
            b.emit(halt())           # block 2
        image = build(emit)
        blocks = find_basic_blocks(image)
        assert len(blocks) == 3
        loop_block = blocks[1]
        assert set(loop_block.successor_ids) == {1, 2}

    def test_unconditional_branch_single_successor(self):
        def emit(b):
            b.emit(br("end"))
            b.emit(nop())
            b.label("end")
            b.emit(halt())
        image = build(emit)
        blocks = find_basic_blocks(image)
        assert blocks[0].successor_ids == [2]

    def test_indirect_jump_unknown_successors(self):
        def emit(b):
            b.emit(ret(26))
            b.emit(halt())
        image = build(emit)
        blocks = find_basic_blocks(image)
        assert blocks[0].successor_ids == []

    def test_blocks_partition_image(self):
        def emit(b):
            b.label("main")
            b.emit(bsr(26, "f"))
            b.emit(bne(1, "main"))
            b.emit(halt())
            b.label("f")
            b.emit(nop())
            b.emit(ret(26))
        image = build(emit)
        blocks = find_basic_blocks(image)
        covered = sorted(
            index for block in blocks for index in block.indices()
        )
        assert covered == list(range(image.instruction_count))
