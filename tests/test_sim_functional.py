"""Unit tests for the functional simulator, including DISEPC semantics."""

import pytest

from repro.core.controller import DiseController
from repro.core.directives import Lit, T_RS
from repro.core.language import parse_productions
from repro.core.pattern import match_opcode, match_stores
from repro.core.production import ProductionSet
from repro.core.replacement import (
    TRIGGER_INSN,
    ReplacementInstr,
    ReplacementSpec,
)
from repro.isa.build import (
    Imm,
    addq,
    beq,
    bis,
    bne,
    br,
    bsr,
    cmoveq,
    cmovne,
    cmpeq,
    cmple,
    cmplt,
    cmpult,
    codeword,
    fault,
    halt,
    jsr,
    lda,
    ldah,
    ldl,
    ldq,
    mulq,
    nop,
    out,
    ret,
    sll,
    sra,
    srl,
    stl,
    stq,
    subq,
    xor,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import dise_reg, parse_reg
from repro.program.builder import ProgramBuilder
from repro.sim.functional import ExecutionError, Machine, run_program

from conftest import A0, A1, RA, T0, T1, V0, ZERO, build_loop_program

MASK = (1 << 64) - 1


def run_snippet(instrs, data=None, dise=None, init=None):
    b = ProgramBuilder()
    if data:
        for name, words in data.items():
            b.alloc_data(name, len(words), init=words)
    b.label("main")
    for item in instrs:
        if isinstance(item, tuple) and item[0] == "la":
            b.load_address(item[1], item[2])
        else:
            b.emit(item)
    b.emit(halt())
    image = b.build()
    controller = None
    if dise is not None:
        controller = DiseController()
        controller.install(dise)
    machine = Machine(image, controller=controller)
    if init:
        init(machine)
    return machine.run(max_steps=100_000)


class TestArithmetic:
    def test_add_sub_mul(self):
        r = run_snippet([
            bis(ZERO, Imm(7), T0),
            addq(T0, Imm(5), T1),
            subq(T1, Imm(2), A0),
            mulq(A0, Imm(3), A1),
            out(A1),
        ])
        assert r.outputs == [30]

    def test_64bit_wraparound(self):
        r = run_snippet([
            bis(ZERO, Imm(1), T0),
            sll(T0, Imm(63), T0),
            addq(T0, T0, T0),   # 2^64 -> 0
            out(T0),
        ])
        assert r.outputs == [0]

    def test_logic_ops(self):
        r = run_snippet([
            bis(ZERO, Imm(0b1100), T0),
            xor(T0, Imm(0b1010), T1),
            out(T1),
        ])
        assert r.outputs == [0b0110]

    def test_shifts(self):
        r = run_snippet([
            bis(ZERO, Imm(1), T0),
            sll(T0, Imm(10), T0),
            srl(T0, Imm(4), T1),
            out(T1),
        ])
        assert r.outputs == [64]

    def test_sra_sign_extends(self):
        r = run_snippet([
            bis(ZERO, Imm(1), T0),
            sll(T0, Imm(63), T0),   # sign bit
            sra(T0, Imm(60), T0),
            out(T0),
        ])
        assert r.outputs == [((-8) & MASK)]

    def test_signed_compares(self):
        r = run_snippet([
            bis(ZERO, Imm(0), T0),
            subq(T0, Imm(1), T0),   # -1
            cmplt(T0, ZERO, T1),    # -1 < 0 -> 1
            out(T1),
            cmpult(T0, ZERO, T1),   # unsigned: 2^64-1 < 0 -> 0
            out(T1),
            cmple(T0, T0, T1),
            out(T1),
            cmpeq(T0, T0, T1),
            out(T1),
        ])
        assert r.outputs == [1, 0, 1, 1]

    def test_conditional_moves(self):
        r = run_snippet([
            bis(ZERO, Imm(0), T0),
            bis(ZERO, Imm(9), A0),
            bis(ZERO, Imm(1), A1),
            cmoveq(T0, A0, A1),   # T0 == 0: A1 <- 9
            out(A1),
            cmovne(T0, Imm(5), A1),   # T0 == 0: unchanged
            out(A1),
        ])
        assert r.outputs == [9, 9]

    def test_zero_register_immutable(self):
        r = run_snippet([
            addq(ZERO, Imm(5), ZERO),
            out(ZERO),
        ])
        assert r.outputs == [0]

    def test_lda_ldah(self):
        r = run_snippet([
            ldah(T0, 2, ZERO),
            lda(T0, 0x34, T0),
            out(T0),
        ])
        assert r.outputs == [0x20034]


class TestMemory:
    def test_store_load_round_trip(self):
        r = run_snippet([
            ("la", A1, "buf"),
            bis(ZERO, Imm(123), T0),
            stq(T0, 8, A1),
            ldq(A0, 8, A1),
            out(A0),
        ], data={"buf": [0, 0]})
        assert r.outputs == [123]

    def test_initialised_data(self):
        r = run_snippet([
            ("la", A1, "buf"),
            ldq(A0, 0, A1),
            out(A0),
        ], data={"buf": [42]})
        assert r.outputs == [42]

    def test_ldl_sign_extends(self):
        r = run_snippet([
            ("la", A1, "buf"),
            bis(ZERO, Imm(1), T0),
            sll(T0, Imm(31), T0),   # 0x8000_0000
            stl(T0, 0, A1),
            ldl(A0, 0, A1),
            out(A0),
        ], data={"buf": [0]})
        assert r.outputs == [0xFFFFFFFF80000000]


class TestControlFlow:
    def test_loop(self, loop_image):
        result = run_program(loop_image)
        assert result.outputs == [5 + 4 + 3 + 2 + 1]
        assert result.halted and not result.faulted

    def test_call_return(self, call_image):
        result = run_program(call_image)
        assert result.final_regs[V0] == 5, "leaf called once per iteration"

    def test_taken_and_untaken_cond_branches(self):
        r = run_snippet([
            bis(ZERO, Imm(1), T0),
            bne(T0, "skip1") if False else bne(T0, 1),   # skip next
            out(T0),                                       # skipped
            beq(T0, 1),                                    # not taken
            out(T0),                                       # executes
        ])
        assert r.outputs == [1]

    def test_indirect_call_through_register(self):
        b = ProgramBuilder()
        b.label("main")
        b.load_address(parse_reg("pv"), "callee")
        b.emit(jsr(RA, parse_reg("pv")))
        b.emit(out(V0))
        b.emit(halt())
        b.label("callee")
        b.emit(bis(ZERO, Imm(77), V0))
        b.emit(ret(RA))
        result = run_program(b.build())
        assert result.outputs == [77]

    def test_jump_to_nontext_faults(self):
        from repro.sim.functional import FAULT_BAD_JUMP

        r = run_snippet([
            bis(ZERO, Imm(16), T0),
            ret(T0),   # address 16 is not in the text segment
        ])
        assert r.fault_code == FAULT_BAD_JUMP

    def test_fault_instruction(self):
        r = run_snippet([fault(3)])
        assert r.fault_code == 3 and r.halted

    def test_runaway_detection(self):
        b = ProgramBuilder()
        b.label("main")
        b.emit(br("main"))
        with pytest.raises(ExecutionError):
            run_program(b.build(), max_steps=1000)

    def test_falling_off_image(self):
        b = ProgramBuilder()
        b.label("main")
        b.emit(nop())
        with pytest.raises(ExecutionError):
            run_program(b.build(), max_steps=10)


class TestTraceRecording:
    def test_ops_recorded(self, loop_image):
        result = run_program(loop_image)
        assert len(result.ops) == result.instructions
        assert result.ops[0].fetch_addr == loop_image.entry_address

    def test_trace_disabled(self, loop_image):
        machine = Machine(loop_image, record_trace=False)
        result = machine.run()
        assert result.ops == [] and result.instructions > 0

    def test_branch_ops_have_targets(self, loop_image):
        result = run_program(loop_image)
        taken = [o for o in result.ops if o.ctrl == "cond" and o.ctrl_taken]
        assert taken and all(o.ctrl_target is not None for o in taken)

    def test_memory_ops_have_addresses(self, loop_image):
        result = run_program(loop_image)
        loads = [o for o in result.ops
                 if o.mem_addr is not None and not o.is_store]
        stores = [o for o in result.ops if o.is_store]
        assert loads and stores


def stray_codeword_image():
    b = ProgramBuilder()
    b.label("main")
    b.emit(codeword(Opcode.RES0, 1, 2, 3, 0))
    b.emit(halt())
    return b.build()


class TestErrors:
    def test_stray_codeword(self):
        with pytest.raises(ExecutionError):
            run_program(stray_codeword_image())

    def test_dise_branch_outside_expansion(self):
        from repro.isa.build import dbne

        b = ProgramBuilder()
        b.label("main")
        b.emit(dbne(T0, 0))
        b.emit(halt())
        with pytest.raises(ExecutionError):
            run_program(b.build())
