"""Tests for composed ACFs (Section 3.3 / 4.3)."""

import pytest

from repro.acf.composition import (
    COMPOSITION_SCHEMES,
    build_composition,
    compose_dise_dise,
    compose_rewrite_dedicated,
    compose_rewrite_dise,
)
from repro.acf.mfi import MFI_FAULT_CODE
from repro.isa.build import Imm, bis, halt, ldq, out, sll, stq
from repro.program.builder import ProgramBuilder
from repro.sim.functional import run_program
from repro.workloads import generate_by_name

from conftest import A0, A1, T0, ZERO, build_loop_program


@pytest.fixture(scope="module")
def bench_image():
    return generate_by_name("bzip2", scale=0.3)


@pytest.fixture(scope="module")
def bench_plain(bench_image):
    return run_program(bench_image, record_trace=False)


class TestAllSchemesEquivalent:
    @pytest.mark.parametrize("scheme", COMPOSITION_SCHEMES)
    def test_clean_program_equivalent(self, scheme, bench_image, bench_plain):
        result, installation = build_composition(bench_image, scheme)
        run = installation.run(record_trace=False)
        assert run.outputs == bench_plain.outputs, scheme
        assert run.fault_code is None, scheme

    def test_unknown_scheme(self, bench_image):
        with pytest.raises(ValueError):
            build_composition(bench_image, "dedicated+dedicated")


def wild_store_image():
    b = ProgramBuilder()
    b.alloc_data("buf", 8, init=[1] * 8)
    b.label("main")
    b.load_address(A1, "buf")
    # Enough legal accesses to give the compressor something to chew on.
    for off in (0, 8, 16, 24):
        b.emit(ldq(A0, off, A1))
        b.emit(stq(A0, off, A1))
    b.emit(bis(ZERO, Imm(3), T0))
    b.emit(sll(T0, Imm(26), T0))
    b.emit(stq(A0, 0, T0))          # wild store
    b.emit(out(A0))
    b.emit(halt())
    return b.build()


class TestFaultIsolationSurvivesComposition:
    """Composing with decompression must not weaken MFI."""

    @pytest.mark.parametrize("scheme", COMPOSITION_SCHEMES)
    def test_wild_store_still_caught(self, scheme):
        result, installation = build_composition(wild_store_image(), scheme)
        run = installation.run()
        assert run.fault_code == MFI_FAULT_CODE, scheme
        assert run.final_memory.read(3 << 26) == 0, scheme


class TestDiseDiseStructure:
    def test_composed_sequences_flagged_for_long_miss(self, bench_image):
        result, installation = compose_dise_dise(bench_image)
        pset = installation.production_sets[0]
        composed = [
            spec for seq_id, spec in pset.replacements.items()
            if spec.composed_on_fill
        ]
        assert composed, "dictionary entries compose in the RT miss handler"

    def test_dictionary_entries_grow_under_composition(self, bench_image):
        plain_result, _ = build_composition(bench_image, "rewrite+dise")
        composed_result, installation = compose_dise_dise(bench_image)
        composed_pset = installation.production_sets[0]
        from repro.acf.compression import DISE_OPTIONS, compress_image

        plain_pset = compress_image(bench_image, DISE_OPTIONS).production_set
        avg_plain = (plain_pset.total_replacement_instrs()
                     / max(1, len(plain_pset.replacements)))
        # Only consider dictionary entries (tags shared with the plain set).
        composed_instrs = sum(
            len(composed_pset.replacements[tag])
            for tag in plain_pset.replacements
        )
        avg_composed = composed_instrs / len(plain_pset.replacements)
        assert avg_composed > avg_plain, (
            "inlining MFI into dictionary entries must lengthen them"
        )

    def test_compressed_smaller_than_rewritten(self, bench_image):
        """The paper's code-usage story: the server ships a compressed,
        unmodified app; MFI is composed client-side — so the dise+dise text
        is far smaller than anything rewriting-based."""
        dd_result, _ = compose_dise_dise(bench_image)
        rd_result, _ = compose_rewrite_dedicated(bench_image)
        rD_result, _ = compose_rewrite_dise(bench_image)
        assert dd_result.compressed_text_bytes < rd_result.compressed_text_bytes
        assert dd_result.compressed_text_bytes < rD_result.compressed_text_bytes

    def test_rewrite_dise_reverses_bloat(self, bench_image):
        """Parameterized compression factors the inserted check sequences
        back out (Section 4.3)."""
        rD_result, _ = compose_rewrite_dise(bench_image)
        # The compressed rewritten text is smaller than the original
        # rewritten text by a healthy margin.
        assert rD_result.compressed_text_bytes < rD_result.original_text_bytes * 0.8
