"""Tests for memory fault isolation (all three implementations)."""

import pytest

from repro.acf.mfi import (
    DR_CODE_SEG,
    DR_DATA_SEG,
    ERROR_LABEL,
    MFI_FAULT_CODE,
    MfiError,
    SCAVENGED_REGS,
    attach_mfi,
    ensure_error_stub,
    mfi_production_set,
    mfi_production_source,
    rewrite_mfi,
    segment_ids,
)
from repro.isa.build import Imm, bis, halt, ldq, out, sll, stq, jsr, ret
from repro.isa.opcodes import OpClass
from repro.isa.registers import parse_reg
from repro.program.builder import ProgramBuilder
from repro.sim.functional import run_program

from conftest import A0, A1, RA, T0, ZERO, build_loop_program


def wild_store_image(kind="store"):
    """A program that makes one out-of-segment access."""
    b = ProgramBuilder()
    b.alloc_data("buf", 2, init=[1, 2])
    b.label("main")
    b.load_address(A1, "buf")
    b.emit(ldq(A0, 0, A1))            # legal load
    b.emit(bis(ZERO, Imm(3), T0))
    b.emit(sll(T0, Imm(26), T0))      # segment 3
    if kind == "store":
        b.emit(stq(A0, 0, T0))
    elif kind == "load":
        b.emit(ldq(A0, 0, T0))
    else:
        b.emit(ret(T0))               # wild indirect jump
    b.emit(out(A0))
    b.emit(halt())
    return b.build()


class TestDiseMfi:
    @pytest.mark.parametrize("variant", ["dise3", "dise4"])
    @pytest.mark.parametrize("kind", ["store", "load", "jump"])
    def test_wild_access_caught(self, variant, kind):
        installation = attach_mfi(wild_store_image(kind), variant)
        result = installation.run()
        assert result.fault_code == MFI_FAULT_CODE

    @pytest.mark.parametrize("variant", ["dise3", "dise4"])
    def test_clean_program_unperturbed(self, variant):
        image = build_loop_program()
        plain = run_program(image)
        result = attach_mfi(image, variant).run()
        assert result.outputs == plain.outputs
        assert result.fault_code is None

    def test_wild_store_blocked_before_memory_write(self):
        installation = attach_mfi(wild_store_image("store"), "dise3")
        result = installation.run()
        assert result.final_memory.read(3 << 26) == 0

    def test_dise3_shorter_than_dise4(self):
        image = build_loop_program()
        r3 = attach_mfi(image, "dise3").run()
        r4 = attach_mfi(image, "dise4").run()
        assert r3.instructions < r4.instructions
        assert r3.expansions == r4.expansions

    def test_expansion_rate_matches_memory_ops(self):
        image = build_loop_program()
        result = attach_mfi(image, "dise3").run()
        memops = sum(
            1 for o in result.ops
            if o.fetch_addr is not None and o.expansion is not None
        )
        assert result.expansions == memops

    def test_error_stub_appended_once(self):
        image = build_loop_program()
        once = ensure_error_stub(image)
        twice = ensure_error_stub(once)
        assert once is twice
        assert ERROR_LABEL in once.symbols

    def test_production_set_requires_stub(self):
        with pytest.raises(MfiError):
            mfi_production_set(build_loop_program())

    def test_segment_ids(self):
        image = build_loop_program()
        data_seg, code_seg = segment_ids(image)
        assert data_seg == image.data_base >> 26
        assert code_seg == image.text_base >> 26

    def test_unknown_variant(self):
        with pytest.raises(MfiError):
            mfi_production_source("dise9")

    def test_init_seeds_dedicated_registers(self):
        installation = attach_mfi(build_loop_program(), "dise3")
        machine = installation.make_machine()
        data_seg, code_seg = segment_ids(installation.image)
        assert machine.regs[DR_DATA_SEG] == data_seg
        assert machine.regs[DR_CODE_SEG] == code_seg


class TestRewritingMfi:
    def test_wild_access_caught(self):
        result = rewrite_mfi(wild_store_image("store")).run()
        assert result.fault_code == MFI_FAULT_CODE

    def test_wild_jump_caught(self):
        result = rewrite_mfi(wild_store_image("jump")).run()
        assert result.fault_code == MFI_FAULT_CODE

    def test_clean_program_equivalent(self):
        image = build_loop_program()
        plain = run_program(image)
        result = rewrite_mfi(image).run()
        assert result.outputs == plain.outputs
        assert result.fault_code is None

    def test_static_growth(self):
        image = build_loop_program()
        rewritten = rewrite_mfi(image).image
        unsafe = image.count_matching(
            lambda i: i.opclass in (OpClass.LOAD, OpClass.STORE,
                                    OpClass.INDIRECT_JUMP)
        )
        # 4 inserted per unsafe op + 2-instr prologue + >= 1 stub.
        assert rewritten.instruction_count >= (
            image.instruction_count + 4 * unsafe + 3
        )

    def test_scavenged_register_conflict_detected(self):
        b = ProgramBuilder()
        b.label("main")
        b.emit(bis(ZERO, Imm(1), SCAVENGED_REGS[0]))
        b.emit(halt())
        with pytest.raises(MfiError):
            rewrite_mfi(b.build())

    def test_rewritten_executes_more_instructions_than_dise3(self):
        image = build_loop_program(iterations=20)
        dise3 = attach_mfi(image, "dise3").run()
        rewritten = rewrite_mfi(image).run()
        # Same checks, plus the defensive copies (DISE4-style sequences).
        assert rewritten.instructions > dise3.instructions

    def test_transparency_dise_image_unmodified(self):
        image = build_loop_program()
        installation = attach_mfi(image, "dise3")
        # Only the appended stub distinguishes the DISE image.
        assert installation.image.instructions[:image.instruction_count] \
            == image.instructions
