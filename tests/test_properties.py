"""Cross-module property-based tests over randomly generated programs.

Hypothesis builds small but complete programs (loops, data, branches) and
checks the big invariants of DESIGN.md: decompression identity, MFI
transparency and soundness, the engine's peephole/no-recursion property,
and precise-state determinism.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.acf.compression import (
    DEDICATED_OPTIONS,
    DISE_OPTIONS,
    compress_image,
)
from repro.acf.mfi import MFI_FAULT_CODE, attach_mfi, rewrite_mfi
from repro.isa.build import (
    Imm,
    addq,
    and_,
    bis,
    bne,
    halt,
    lda,
    ldq,
    out,
    sll,
    srl,
    stq,
    subq,
    xor,
)
from repro.program.builder import ProgramBuilder
from repro.sim.functional import Machine, run_program

from conftest import A0, A1, T0, ZERO

# Registers available to generated blocks.  The loop counter (t0) and the
# data base pointer (a1) are reserved so generated code cannot clobber the
# program's own control structure.
_REGS = (0, 2, 3, 4, 5, 16, 18, 19)

# Idiom templates: (callable(reg1, reg2, offset) -> [instructions]).
_BLOCKS = (
    lambda r1, r2, off: [ldq(r1, off, A1), addq(r1, Imm(1), r1),
                         stq(r1, off, A1)],
    lambda r1, r2, off: [ldq(r1, off, A1), addq(r2, r1, r2)],
    lambda r1, r2, off: [srl(r1, Imm(3), r2), and_(r2, Imm(63), r2),
                         xor(r2, r1, r1)],
    lambda r1, r2, off: [addq(r2, Imm(1), r2), sll(r2, Imm(1), r2)],
    lambda r1, r2, off: [stq(r2, off, A1), stq(r1, off + 8, A1)],
)

block_strategy = st.tuples(
    st.integers(0, len(_BLOCKS) - 1),
    st.sampled_from(_REGS),
    st.sampled_from(_REGS),
    st.sampled_from((0, 8, 16, 24, 32)),
)

program_strategy = st.tuples(
    st.lists(block_strategy, min_size=2, max_size=10),
    st.integers(min_value=1, max_value=4),   # loop iterations
)


def build_program(blocks, iterations):
    b = ProgramBuilder()
    b.alloc_data("buf", 32, init=list(range(10)))
    b.label("main")
    b.load_address(A1, "buf")
    b.emit(bis(ZERO, Imm(iterations), T0))
    b.label("loop")
    for index, (which, r1, r2, off) in enumerate(blocks):
        b.emit_many(_BLOCKS[which](r1, r2, off))
    b.emit(subq(T0, Imm(1), T0))
    b.emit(bne(T0, "loop"))
    b.emit(ldq(A0, 0, A1))
    b.emit(out(A0))
    b.emit(halt())
    b.set_entry("main")
    return b.build()


def outcome(result):
    return (result.outputs, result.fault_code,
            tuple(result.final_regs[:32]))


class TestDecompressionIdentity:
    @settings(max_examples=30, deadline=None)
    @given(program_strategy)
    def test_dise_compression_preserves_execution(self, params):
        blocks, iterations = params
        image = build_program(blocks, iterations)
        plain = run_program(image)
        result = compress_image(image, DISE_OPTIONS)
        run = result.installation().run()
        assert run.outputs == plain.outputs
        assert run.final_memory == plain.final_memory
        assert run.final_regs[:32] == plain.final_regs[:32]

    @settings(max_examples=20, deadline=None)
    @given(program_strategy)
    def test_dedicated_compression_preserves_execution(self, params):
        blocks, iterations = params
        image = build_program(blocks, iterations)
        plain = run_program(image)
        result = compress_image(image, DEDICATED_OPTIONS)
        run = result.installation().run()
        assert run.outputs == plain.outputs
        assert run.final_memory == plain.final_memory

    @settings(max_examples=20, deadline=None)
    @given(program_strategy)
    def test_compression_never_grows_text(self, params):
        blocks, iterations = params
        image = build_program(blocks, iterations)
        result = compress_image(image, DISE_OPTIONS)
        assert result.compressed_text_bytes <= result.original_text_bytes


class TestMfiProperties:
    @settings(max_examples=25, deadline=None)
    @given(program_strategy)
    def test_transparency_on_clean_programs(self, params):
        """All three MFI implementations leave in-segment programs
        unperturbed and agree with the original."""
        blocks, iterations = params
        image = build_program(blocks, iterations)
        plain = run_program(image)
        for installation in (attach_mfi(image, "dise3"),
                             attach_mfi(image, "dise4"),
                             rewrite_mfi(image)):
            result = installation.run()
            assert result.outputs == plain.outputs, installation.name
            assert result.fault_code is None, installation.name

    @settings(max_examples=25, deadline=None)
    @given(program_strategy, st.integers(2, 60))
    def test_soundness_wild_store_always_caught(self, params, segment):
        """Injecting one out-of-segment store anywhere: MFI always faults
        before the store writes memory."""
        blocks, iterations = params
        b = ProgramBuilder()
        b.alloc_data("buf", 32, init=list(range(10)))
        b.label("main")
        b.load_address(A1, "buf")
        for which, r1, r2, off in blocks:
            b.emit_many(_BLOCKS[which](r1, r2, off))
        b.emit(bis(ZERO, Imm(segment), T0))
        b.emit(sll(T0, Imm(26), T0))
        b.emit(stq(A1, 0, T0))       # the wild store
        b.emit(halt())
        b.set_entry("main")
        image = b.build()
        result = attach_mfi(image, "dise3").run()
        assert result.fault_code == MFI_FAULT_CODE
        assert result.final_memory.read(segment << 26) == 0


class TestEngineProperties:
    @settings(max_examples=20, deadline=None)
    @given(program_strategy)
    def test_peephole_no_recursion(self, params):
        """Every dynamic instruction is either unexpanded or belongs to
        exactly one expansion whose length matches its spec — replacement
        instructions are never re-expanded."""
        blocks, iterations = params
        image = build_program(blocks, iterations)
        installation = attach_mfi(image, "dise3")
        result = installation.run()
        in_expansion = 0
        expected = 0
        for op in result.ops:
            if op.expansion is not None:
                expected += op.expansion[1]
            if op.disepc > 0 or op.expansion is not None:
                in_expansion += 1
        # Some sequences are cut short by taken branches (never here, since
        # the MFI check branch is never taken on clean programs).
        assert in_expansion == expected

    @settings(max_examples=10, deadline=None)
    @given(program_strategy, st.integers(1, 500))
    def test_checkpoint_restore_determinism(self, params, cut):
        blocks, iterations = params
        image = build_program(blocks, iterations)
        reference = attach_mfi(image, "dise3").run()

        machine = attach_mfi(image, "dise3").make_machine()
        for _ in range(min(cut, reference.instructions - 1)):
            machine.step()
        state = machine.checkpoint()
        fresh = attach_mfi(image, "dise3").make_machine()
        fresh.restore(state)
        result = fresh.run()
        assert outcome(result) == outcome(reference)


def _trace_tuple(result):
    """Everything a trace records, as comparable plain data."""
    ops = [
        (op.pc, op.disepc, op.opcode, op.srcs, op.dest, op.mem_addr,
         op.is_store, op.fetch_addr, op.ctrl, op.ctrl_taken, op.ctrl_target,
         op.is_trigger_ctrl, op.expansion)
        for op in result.ops
    ]
    return (ops, result.outputs, result.fault_code, result.halted,
            result.instructions, result.app_instructions, result.expansions,
            tuple(result.final_regs), result.final_memory.snapshot())


class TestFastDispatchEquivalence:
    """The opcode-indexed fast path must be bit-identical to the generic
    if-chain interpreter on every program, plain or transformed."""

    def _run_both(self, installation):
        fast = installation.make_machine()
        fast_trace = fast.run()
        generic = installation.make_machine()
        generic._execute = generic._execute_generic
        generic_trace = generic.run()
        assert _trace_tuple(fast_trace) == _trace_tuple(generic_trace)

    @settings(max_examples=25, deadline=None)
    @given(program_strategy)
    def test_plain_programs(self, params):
        blocks, iterations = params
        image = build_program(blocks, iterations)
        from repro.acf.base import plain_installation

        self._run_both(plain_installation(image))

    @settings(max_examples=15, deadline=None)
    @given(program_strategy)
    def test_under_mfi_expansion(self, params):
        blocks, iterations = params
        image = build_program(blocks, iterations)
        self._run_both(attach_mfi(image, "dise3"))

    @settings(max_examples=15, deadline=None)
    @given(program_strategy)
    def test_under_compression(self, params):
        blocks, iterations = params
        image = build_program(blocks, iterations)
        self._run_both(compress_image(image, DISE_OPTIONS).installation())
