"""Determinism pins: every benchmark profile replays bit-identically.

The bisector re-runs executions and assumes the re-run retires exactly the
same stream; these tests pin that assumption for the whole SPECint profile
set, serially and under parallel fan-out, by requiring the same-seed
double-run ``full``-projection observation digests to match exactly.
"""

import pytest

from repro.verify.campaign import observation_digests
from repro.workloads import BENCHMARK_NAMES

SCALE = 0.02


def test_profile_set_is_complete():
    assert len(BENCHMARK_NAMES) == 12


def test_double_run_digests_identical_serial():
    first = observation_digests(BENCHMARK_NAMES, scale=SCALE, jobs=1)
    second = observation_digests(BENCHMARK_NAMES, scale=SCALE, jobs=1)
    assert first == second
    assert set(first) == set(BENCHMARK_NAMES)
    for name, (digest, count) in first.items():
        assert count > 0, name
        assert len(digest) == 64, name


def test_parallel_digests_match_serial(monkeypatch):
    serial = observation_digests(BENCHMARK_NAMES, scale=SCALE, jobs=1)
    monkeypatch.setenv("REPRO_JOBS", "2")
    parallel = observation_digests(BENCHMARK_NAMES, scale=SCALE)
    assert parallel == serial


def test_dispatch_tiers_digest_identical(monkeypatch):
    """Translated, fast, and generic dispatch retire bit-identical streams.

    The full-projection observation digest covers every retirement's
    architectural effects, so equality here means the superblock
    translation cache is observationally invisible on all 12 profiles.
    """
    digests = {}
    for tier in ("generic", "fast", "translated"):
        monkeypatch.setenv("REPRO_DISPATCH", tier)
        digests[tier] = observation_digests(BENCHMARK_NAMES, scale=SCALE,
                                            jobs=1)
    assert digests["translated"] == digests["fast"]
    assert digests["translated"] == digests["generic"]


def test_digests_distinguish_profiles():
    digests = observation_digests(BENCHMARK_NAMES, scale=SCALE, jobs=1)
    values = [digest for digest, _ in digests.values()]
    assert len(set(values)) == len(values)


@pytest.mark.parametrize("bench", BENCHMARK_NAMES)
def test_each_profile_double_run(bench):
    first = observation_digests([bench], scale=SCALE, jobs=1)
    second = observation_digests([bench], scale=SCALE, jobs=1)
    assert first == second
