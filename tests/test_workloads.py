"""Tests for the synthetic SPECint workload generator."""

import pytest

from repro.acf.mfi import SCAVENGED_REGS
from repro.isa.opcodes import OpClass
from repro.program.builder import SEGMENT_SHIFT
from repro.sim.functional import run_program
from repro.workloads import (
    BENCHMARK_NAMES,
    SPECINT2000,
    generate_benchmark,
    generate_by_name,
    get_profile,
)


class TestProfiles:
    def test_twelve_benchmarks(self):
        assert len(SPECINT2000) == 12
        assert set(BENCHMARK_NAMES) == {
            "bzip2", "crafty", "eon", "gap", "gcc", "gzip", "mcf",
            "parser", "perlbmk", "twolf", "vortex", "vpr",
        }

    def test_lookup(self):
        assert get_profile("mcf").name == "mcf"
        with pytest.raises(KeyError):
            get_profile("spice")

    def test_seeds_distinct(self):
        seeds = [p.seed for p in SPECINT2000]
        assert len(seeds) == len(set(seeds))

    def test_gcc_largest_mcf_smallest_text(self):
        sizes = {p.name: p.approx_static_instrs for p in SPECINT2000}
        assert sizes["gcc"] == max(sizes.values())
        assert sizes["mcf"] == min(sizes.values())


class TestGeneration:
    def test_deterministic(self):
        a = generate_by_name("parser", scale=0.3)
        b = generate_by_name("parser", scale=0.3)
        assert a.instructions == b.instructions
        assert a.data_words == b.data_words

    def test_different_benchmarks_differ(self):
        a = generate_by_name("parser", scale=0.3)
        b = generate_by_name("twolf", scale=0.3)
        assert a.instructions != b.instructions

    def test_runs_to_completion_with_checksum(self):
        image = generate_by_name("mcf", scale=0.3)
        result = run_program(image, record_trace=False)
        assert result.halted and result.fault_code is None
        assert len(result.outputs) == 1

    def test_scale_controls_dynamic_length(self):
        short = run_program(generate_by_name("mcf", scale=0.25),
                            record_trace=False)
        long = run_program(generate_by_name("mcf", scale=1.0),
                           record_trace=False)
        assert long.app_instructions > short.app_instructions * 2

    def test_scavenged_registers_untouched(self):
        image = generate_by_name("eon", scale=0.2)
        scavenged = set(SCAVENGED_REGS)
        for instr in image.instructions:
            used = set(instr.source_regs())
            dest = instr.dest_reg()
            if dest is not None:
                used.add(dest)
            assert not used & scavenged

    def test_all_accesses_in_data_segment(self):
        image = generate_by_name("gap", scale=0.2)
        result = run_program(image)
        data_seg = image.data_base >> SEGMENT_SHIFT
        for op in result.ops:
            if op.mem_addr is not None:
                assert op.mem_addr >> SEGMENT_SHIFT == data_seg

    def test_instruction_mix_has_memory_and_branches(self):
        image = generate_by_name("bzip2", scale=0.3)
        result = run_program(image)
        total = len(result.ops)
        memops = sum(1 for o in result.ops if o.mem_addr is not None)
        branches = sum(1 for o in result.ops if o.ctrl == "cond")
        assert 0.10 < memops / total < 0.55
        assert 0.03 < branches / total < 0.35

    def test_branch_bias_tracks_profile(self):
        biased = generate_by_name("gzip", scale=0.3)    # bias 0.88
        result = run_program(biased)
        data_branches = [
            o for o in result.ops if o.ctrl == "cond" and o.ctrl_taken
        ]
        assert data_branches, "some branches taken"

    def test_every_profile_generates_and_runs(self):
        for profile in SPECINT2000:
            image = generate_benchmark(profile, scale=0.1)
            result = run_program(image, record_trace=False,
                                 max_steps=10_000_000)
            assert result.halted and not result.faulted, profile.name

    def test_indirect_calls_present(self):
        image = generate_by_name("bzip2", scale=0.2)
        result = run_program(image)
        indirect = [o for o in result.ops
                    if o.ctrl == "call" and o.opcode.name == "JSR"]
        assert indirect, "some hot calls go through function pointers"
