"""Unit tests for replacement-sequence specifications."""

import pytest

from repro.core.directives import AbsTarget, Lit, T_IMM, T_RS
from repro.core.replacement import (
    TRIGGER_INSN,
    ReplacementInstr,
    ReplacementSpec,
    identity_replacement,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import dise_reg


def srl_rs():
    return ReplacementInstr(
        opcode=Opcode.SRL, ra=T_RS, imm=Lit(26), rc=Lit(dise_reg(1))
    )


class TestReplacementInstr:
    def test_trigger_copy(self):
        assert TRIGGER_INSN.is_trigger_copy
        assert not srl_rs().is_trigger_copy

    def test_trigger_copy_carries_no_directives(self):
        with pytest.raises(ValueError):
            ReplacementSpec(instrs=(
                ReplacementInstr(opcode=None, ra=Lit(1)),
            ))

    def test_dise_branch_flag(self):
        dbr = ReplacementInstr(opcode=Opcode.DBR, ra=Lit(31), imm=Lit(0))
        assert dbr.is_dise_branch
        assert not dbr.is_app_branch

    def test_app_branch_flag(self):
        bne = ReplacementInstr(opcode=Opcode.BNE, ra=Lit(1),
                               imm=AbsTarget(0x400000))
        assert bne.is_app_branch and not bne.is_dise_branch

    def test_render(self):
        assert srl_rs().render() == "srl T.RS, #26, $dr1"
        assert TRIGGER_INSN.render() == "T.INSN"


class TestReplacementSpec:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplacementSpec(instrs=())

    def test_dise_branch_target_bounds(self):
        good = ReplacementInstr(opcode=Opcode.DBEQ, ra=Lit(1), imm=Lit(1))
        ReplacementSpec(instrs=(good, TRIGGER_INSN))
        bad = ReplacementInstr(opcode=Opcode.DBEQ, ra=Lit(1), imm=Lit(5))
        with pytest.raises(ValueError):
            ReplacementSpec(instrs=(bad, TRIGGER_INSN))

    def test_dise_branch_target_must_be_literal(self):
        bad = ReplacementInstr(opcode=Opcode.DBEQ, ra=Lit(1), imm=T_IMM)
        with pytest.raises(ValueError):
            ReplacementSpec(instrs=(bad, TRIGGER_INSN))

    def test_operate_needs_dest(self):
        bad = ReplacementInstr(opcode=Opcode.SRL, ra=T_RS, imm=Lit(26))
        with pytest.raises(ValueError):
            ReplacementSpec(instrs=(bad,))

    def test_trigger_copy_offsets(self):
        spec = ReplacementSpec(instrs=(srl_rs(), TRIGGER_INSN))
        assert spec.trigger_copy_offsets == (1,)

    def test_uses_dedicated_registers(self):
        assert ReplacementSpec(instrs=(srl_rs(),)).uses_dedicated_registers
        literal_only = ReplacementInstr(
            opcode=Opcode.ADDQ, ra=Lit(1), rb=Lit(2), rc=Lit(3)
        )
        assert not ReplacementSpec(
            instrs=(literal_only,)
        ).uses_dedicated_registers

    def test_len_and_iter(self):
        spec = ReplacementSpec(instrs=(srl_rs(), TRIGGER_INSN))
        assert len(spec) == 2
        assert list(spec)[1] is TRIGGER_INSN

    def test_identity(self):
        spec = identity_replacement()
        assert len(spec) == 1
        assert spec.instrs[0].is_trigger_copy

    def test_composed_on_fill_flag(self):
        spec = ReplacementSpec(instrs=(TRIGGER_INSN,), composed_on_fill=True)
        assert spec.composed_on_fill
