"""Superblock translation cache: precise state, invalidation, sharing.

The translated dispatch tier pre-decodes basic blocks (including
instantiated DISE replacement bodies) into pre-bound handler thunks that
live in an image-wide store shared by every machine running the same
production set.  These tests pin the properties the tier must preserve:

* precise PC:DISEPC state — checkpoints taken at any retirement boundary
  (including mid-sequence) restore and replay bit-identically, and the
  step budget / :class:`ExecutionTimeout` fires after exactly the same
  number of dynamic instructions as the interpretive tiers;
* production-set invalidation — controller swaps re-bind a live machine
  to the store entry for the new active set without destroying warm
  translations for other sets; in-place invalidation clears everything;
* cross-machine sharing — a fresh machine on a warm image starts with
  the translated superblocks already attached, even under a different
  controller holding an equal production set;
* observational equivalence — serialized traces, verify-observer digests,
  and interrupted-and-resumed fault campaigns agree with the generic
  reference tier.
"""

import json

import pytest

from repro.core.controller import DiseController
from repro.core.language import parse_productions
from repro.errors import ExecutionTimeout
from repro.faults.campaign import (
    CampaignConfig,
    CampaignInterrupted,
    run_campaign,
)
from repro.harness.trace_cache import serialize_trace
from repro.isa.build import Imm, bis, bne, halt, out, stq, subq
from repro.isa.registers import dise_reg
from repro.program.builder import ProgramBuilder
from repro.sim.functional import Machine
from repro.verify.observe import Observer

from conftest import A1, T0, ZERO

TIERS = ("generic", "fast", "translated")

#: The MFI-style store check from the precise-state tests: every store's
#: address is segment-checked against $dr2 before it retires.  The branch
#: target is never taken when $dr2 is seeded correctly.
MFI_PSET = """
P1: T.OPCLASS == store -> R1
R1:
    srl   T.RS, #26, $dr1
    xor   $dr1, $dr2, $dr1
    bne   $dr1, @0x400100
    T.INSN
"""

#: A second, distinguishable production set for swap tests: count every
#: store in $dr0 instead of checking it.
AUDIT_PSET = """
P1: T.OPCLASS == store -> R1
R1:
    addq  $dr0, #1, $dr0
    T.INSN
"""


def build_loop_image(trips=4):
    """A store loop: the loop entry is revisited, so the warmup gate
    admits it and the translated tier actually builds superblocks (a
    straight-line program would run entirely interpretively)."""
    b = ProgramBuilder()
    b.alloc_data("buf", 1, init=[0])
    b.label("main")
    b.load_address(A1, "buf")
    b.emit(bis(ZERO, Imm(trips), T0))
    b.label("loop")
    b.emit(stq(T0, 0, A1))
    b.emit(subq(T0, Imm(1), T0))
    b.emit(bne(T0, "loop"))
    b.emit(out(T0))
    b.emit(halt())
    b.label("handler")
    b.emit(out(ZERO))
    b.emit(halt())
    return b.build()


def make_machine(dispatch, image=None, controller=None, observer=None,
                 source=MFI_PSET):
    if image is None:
        image = build_loop_image()
    if controller is None:
        controller = DiseController()
        controller.install(parse_productions(source))
    machine = Machine(image, controller=controller, dispatch=dispatch,
                      observer=observer)
    machine.regs[dise_reg(2)] = image.data_base >> 26
    return machine


class TestObservationalEquivalence:
    def test_outcomes_identical_across_tiers(self):
        results = {tier: make_machine(tier).run() for tier in TIERS}
        reference = results["generic"]
        for tier in ("fast", "translated"):
            result = results[tier]
            assert result.outputs == reference.outputs, tier
            assert result.final_regs == reference.final_regs, tier
            assert result.instructions == reference.instructions, tier
            assert result.expansions == reference.expansions, tier
            assert result.final_memory == reference.final_memory, tier

    def test_serialized_traces_byte_identical_across_tiers(self):
        blobs = {tier: serialize_trace(make_machine(tier).run())
                 for tier in TIERS}
        assert blobs["translated"] == blobs["generic"]
        assert blobs["fast"] == blobs["generic"]

    def test_observer_digests_identical_across_tiers(self):
        digests = {}
        for tier in TIERS:
            observer = Observer("full")
            make_machine(tier, observer=observer).run()
            digests[tier] = (observer.hexdigest(), observer.count)
        assert digests["translated"] == digests["generic"]
        assert digests["fast"] == digests["generic"]
        assert digests["generic"][1] > 0


class TestPreciseStateTranslated:
    def test_timeout_checkpoints_identical_across_tiers(self):
        """The step budget retires the same dynamic-instruction prefix in
        every tier: interrupting at any count yields identical precise
        state, superblock boundaries notwithstanding."""
        total = make_machine("generic").run().instructions
        for budget in range(1, total):
            states = {}
            for tier in TIERS:
                machine = make_machine(tier)
                with pytest.raises(ExecutionTimeout):
                    machine.run(max_steps=budget)
                states[tier] = machine.checkpoint()
            assert states["translated"] == states["generic"], budget
            assert states["fast"] == states["generic"], budget

    def test_checkpoint_restore_translated_at_every_boundary(self):
        """Interrupt a translated run anywhere — including mid-sequence —
        restore into a fresh translated machine, and finish: the outcome
        matches the generic reference run."""
        reference = make_machine("generic").run()
        total = reference.instructions
        saw_mid_sequence = False
        for interrupt_at in range(1, total):
            machine = make_machine("translated")
            with pytest.raises(ExecutionTimeout):
                machine.run(max_steps=interrupt_at)
            state = machine.checkpoint()
            saw_mid_sequence = saw_mid_sequence or state["disepc"] > 0
            resumed = make_machine("translated")
            resumed.restore(state)
            result = resumed.run()
            assert result.outputs == reference.outputs, interrupt_at
            assert result.final_regs == reference.final_regs, interrupt_at
            assert (result.final_memory
                    == reference.final_memory), interrupt_at
        assert saw_mid_sequence, "no interrupt landed inside an expansion"


class TestInvalidation:
    def test_production_swap_rebinds_and_preserves_warm_entries(self):
        image = build_loop_image()
        controller = DiseController()
        controller.install(parse_productions(MFI_PSET))
        machine = make_machine("translated", image=image,
                               controller=controller)
        machine.run()
        store = image._translation_store
        sig_mfi = controller.engine.production_signature
        assert machine._blocks is store[sig_mfi][0]
        assert machine._blocks, "loop entry should have been translated"

        # Swap to the audit set: the invalidation listener re-binds the
        # machine to the new signature's (empty) entry...
        controller.uninstall("acf")
        controller.install(parse_productions(AUDIT_PSET, name="audit"))
        sig_audit = controller.engine.production_signature
        assert sig_audit != sig_mfi
        assert machine._blocks is store[sig_audit][0]
        assert not machine._blocks
        # ...while the MFI translations stay warm under their own key.
        assert store[sig_mfi][0]

        # Swapping back re-attaches the warm entry.
        controller.uninstall("audit")
        controller.install(parse_productions(MFI_PSET))
        assert controller.engine.production_signature == sig_mfi
        assert machine._blocks is store[sig_mfi][0]
        assert machine._blocks

    def test_mid_run_production_swap_matches_generic(self):
        """A live machine survives an external production-set swap: the
        listener re-binds it and the rest of the run retires under the new
        set, identically in every tier."""
        outcomes = {}
        for tier in TIERS:
            machine = make_machine(tier)
            with pytest.raises(ExecutionTimeout):
                machine.run(max_steps=9)
            controller = machine.controller
            controller.uninstall("acf")
            controller.install(parse_productions(AUDIT_PSET, name="audit"))
            result = machine.run()
            outcomes[tier] = (result.outputs, result.final_regs,
                              result.instructions, result.expansions)
        assert outcomes["translated"] == outcomes["generic"]
        assert outcomes["fast"] == outcomes["generic"]
        # The audit set really took over: the store counter is non-zero.
        assert outcomes["generic"][1][dise_reg(0)] > 0

    def test_invalidate_translations_clears_the_whole_store(self):
        image = build_loop_image()
        machine = make_machine("translated", image=image)
        machine.run()
        assert machine._blocks
        machine.invalidate_translations()
        assert not machine._blocks
        assert not machine._steps
        assert sum(len(entry[0]) for entry
                   in image._translation_store.values()) == 0


class TestSharedStore:
    def test_fresh_machine_starts_warm(self):
        image = build_loop_image()
        controller = DiseController()
        controller.install(parse_productions(MFI_PSET))
        first = make_machine("translated", image=image,
                             controller=controller)
        reference = first.run()
        assert first._blocks

        second = make_machine("translated", image=image,
                              controller=controller)
        assert second._blocks is first._blocks, \
            "machines on one image+productions must share translations"
        result = second.run()
        assert result.outputs == reference.outputs
        assert result.final_regs == reference.final_regs

    def test_sharing_is_by_production_content_not_controller(self):
        """The store key is the engine's content signature, so an equal
        production set under a *different* controller reuses the warm
        translations (the fault campaign builds one machine per fault)."""
        image = build_loop_image()
        first = make_machine("translated", image=image)
        reference = first.run()
        assert first._blocks

        other = DiseController()
        other.install(parse_productions(MFI_PSET))
        second = make_machine("translated", image=image, controller=other)
        assert second._blocks is first._blocks
        result = second.run()
        assert result.outputs == reference.outputs
        assert result.final_regs == reference.final_regs

    def test_distinct_production_sets_do_not_share(self):
        image = build_loop_image()
        first = make_machine("translated", image=image)
        first.run()
        second = make_machine("translated", image=image, source=AUDIT_PSET)
        assert second._blocks is not first._blocks
        assert not second._blocks


class TestFaultCampaignUnderTranslation:
    CONFIG = CampaignConfig(seed=7, faults=12, benchmarks=("bzip2",),
                            scale=0.05, checkpoint_every=4)

    def test_interrupted_campaign_resumes_across_tiers(self, tmp_path,
                                                       monkeypatch):
        """Faults computed under the translation cache carry the same
        outcome digests as the generic path: interrupt a translated
        campaign, resume it generically, and the merged report matches an
        all-generic reference bit for bit."""
        monkeypatch.setenv("REPRO_DISPATCH", "generic")
        reference = run_campaign(self.CONFIG)
        ckpt = str(tmp_path / "campaign.json")
        monkeypatch.setenv("REPRO_DISPATCH", "translated")
        with pytest.raises(CampaignInterrupted):
            run_campaign(self.CONFIG, checkpoint_path=ckpt, stop_after=5)
        monkeypatch.setenv("REPRO_DISPATCH", "generic")
        resumed = run_campaign(self.CONFIG, checkpoint_path=ckpt,
                               resume=True)
        assert json.dumps(resumed, sort_keys=True) == \
            json.dumps(reference, sort_keys=True)
