"""Unit tests for software ACF composition (Section 3.3 / Figure 5)."""

import pytest

from repro.core.compose import (
    ComposeError,
    apply_to_spec,
    concatenate_specs,
    merge_nonnested,
    nest,
    rename_dedicated,
    spec_dedicated_usage,
)
from repro.core.directives import AbsTarget, Lit, T_IMM, T_RS
from repro.core.language import parse_productions
from repro.core.pattern import PatternSpec, match_loads, match_stores
from repro.core.production import ProductionSet
from repro.core.replacement import (
    TRIGGER_INSN,
    ReplacementInstr,
    ReplacementSpec,
    identity_replacement,
)
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import dise_reg

MFI = """
P1: T.OPCLASS == store -> R1
P2: T.OPCLASS == load  -> R1
R1:
    srl   T.RS, #26, $dr1
    xor   $dr1, $dr2, $dr1
    bne   $dr1, @0x400100
    T.INSN
"""

SAT = """
P3: T.OPCLASS == store -> R1
R1:
    lda   $dr4, T.IMM(T.RS)
    stq   $dr4, 0($dr5)
    lda   $dr5, 8($dr5)
    T.INSN
"""


def mfi_set():
    return parse_productions(MFI, name="mfi", scope="kernel")


def sat_set():
    return parse_productions(SAT, name="sat")


class TestNestedComposition:
    def test_figure5_structure(self):
        """Nesting SAT within MFI reproduces Figure 5 (bottom left)."""
        composed = nest(inner=sat_set(), outer=mfi_set())
        # Store pattern -> the inlined sequence; load pattern -> plain MFI.
        by_class = {
            p.pattern.opclass: composed.replacement(p.seq_id)
            for p in composed.productions
        }
        inlined = by_class[OpClass.STORE]
        plain = by_class[OpClass.LOAD]
        assert len(plain) == 4
        # lda + (3-check on the tracing store) + stq + lda
        # + (3-check on the trigger) + T.INSN = 10
        assert len(inlined) == 10
        # The tracing store's check extracts the segment from $dr5 — the
        # literal base register of that store (Figure 5's boxed sequence).
        srl = inlined.instrs[1]
        assert srl.opcode is Opcode.SRL
        assert srl.ra == Lit(dise_reg(5))
        # The trigger's check still references T.RS.
        srl2 = inlined.instrs[6]
        assert srl2.ra == T_RS
        assert inlined.instrs[9].is_trigger_copy

    def test_nested_stores_checked_loads_preserved(self):
        composed = nest(inner=sat_set(), outer=mfi_set())
        patterns = [p.pattern.opclass for p in composed.productions]
        assert OpClass.LOAD in patterns and OpClass.STORE in patterns
        assert len(composed.productions) == 2

    def test_trigger_dependent_outer_pattern_rejected(self):
        outer = ProductionSet("picky")
        outer.define(
            PatternSpec(opclass=OpClass.STORE, regs={"rs": 30}),
            identity_replacement(),
        )
        # SAT's tracing store has base $dr5 (literal != sp): decidable False,
        # but its trigger slot (any store) is only maybe-matched.
        with pytest.raises(ComposeError):
            nest(inner=sat_set(), outer=outer)

    def test_composed_on_fill_propagates(self):
        composed = nest(inner=sat_set(), outer=mfi_set(),
                        composed_on_fill=True)
        for spec in composed.replacements.values():
            if len(spec) > 4:
                assert spec.composed_on_fill

    def test_nest_with_tagged_inner(self):
        inner = ProductionSet("decomp")
        inner.add_replacement(0, ReplacementSpec(instrs=(
            ReplacementInstr(opcode=Opcode.STQ, ra=TrigFieldP1(),
                             rb=TrigFieldP1(), imm=Lit(0)),
        )))
        inner.add_production(
            PatternSpec(opcode=Opcode.RES0), tagged=True
        )
        composed = nest(inner=inner, outer=mfi_set())
        spec = composed.replacement(0)
        # MFI inlined around the dictionary store: 3 checks + the store.
        assert len(spec) == 4
        assert spec.instrs[0].opcode is Opcode.SRL


def TrigFieldP1():
    from repro.core.directives import TrigField

    return TrigField("p1")


class TestDiseBranchRetargeting:
    def test_inner_branch_offsets_remapped(self):
        inner = parse_productions("""
P1: T.OPCLASS == store -> R1
R1:
    dbne  $dr6, .skip
    stq   $dr4, 0($dr5)
.skip:
    T.INSN
""", name="inner")
        composed = nest(inner=inner, outer=mfi_set())
        spec = composed.replacement(
            next(p.seq_id for p in composed.productions
                 if p.pattern.opclass is OpClass.STORE)
        )
        dbne = spec.instrs[0]
        assert dbne.opcode is Opcode.DBNE
        # .skip originally pointed at offset 2 (the trigger); after MFI's
        # 3-instruction check is inlined before the tracing store, the
        # trigger check block starts at offset 1+4 = 5.
        assert dbne.imm == Lit(5)


class TestRegisterRenaming:
    def test_conflicting_scratch_renamed(self):
        # Inner uses $dr1 as persistent state; outer writes $dr1 as scratch.
        inner = parse_productions("""
P1: T.OPCLASS == store -> R1
R1:
    addq  $dr1, #1, $dr1
    T.INSN
""", name="counting")
        composed = nest(inner=inner, outer=mfi_set())
        spec = composed.replacement(
            next(p.seq_id for p in composed.productions
                 if p.pattern.opclass is OpClass.STORE)
        )
        used, written = spec_dedicated_usage(spec)
        # The outer's scratch writes were renamed away from $dr1; the
        # inner's $dr1 arithmetic is untouched.
        assert spec.instrs[0].ra == Lit(dise_reg(1))
        srl = spec.instrs[1]
        assert srl.rc != Lit(dise_reg(1))

    def test_rename_dedicated_helper(self):
        spec = parse_productions(MFI, name="m").replacement(1)
        renamed = rename_dedicated(spec, {dise_reg(1): dise_reg(6)})
        used, _ = spec_dedicated_usage(renamed)
        assert dise_reg(1) not in used
        assert dise_reg(6) in used


class TestNonNestedMerge:
    def test_figure5_right(self):
        merged = merge_nonnested(sat_set(), mfi_set())
        store_spec = merged.replacement(
            next(p.seq_id for p in merged.productions
                 if p.pattern.opclass is OpClass.STORE)
        )
        # SAT's 3 instructions + MFI's 3 + single trigger = 7.
        assert len(store_spec) == 7
        assert store_spec.trigger_copy_offsets == (6,)
        # Load-only MFI production carried over.
        assert any(p.pattern.opclass is OpClass.LOAD
                   for p in merged.productions)

    def test_merge_requires_trailing_trigger(self):
        odd = ProductionSet("odd")
        odd.define(match_stores(), ReplacementSpec(instrs=(
            TRIGGER_INSN,
            ReplacementInstr(opcode=Opcode.BIS, ra=Lit(31), rb=Lit(31),
                             rc=Lit(dise_reg(0))),
        )))
        with pytest.raises(ComposeError):
            merge_nonnested(odd, mfi_set())

    def test_merge_tagged_unsupported(self):
        tagged = ProductionSet("aware")
        tagged.add_replacement(0, identity_replacement())
        tagged.add_production(PatternSpec(opcode=Opcode.RES0), tagged=True)
        with pytest.raises(ComposeError):
            merge_nonnested(tagged, mfi_set())

    def test_concatenate_specs_order(self):
        merged = concatenate_specs(
            sat_set().replacement(1), mfi_set().replacement(1)
        )
        assert merged.instrs[0].opcode is Opcode.LDA
        assert merged.instrs[3].opcode is Opcode.SRL


class TestApplyToSpec:
    def test_identity_when_nothing_matches(self):
        spec = parse_productions("""
P1: T.OPCLASS == cond_branch -> R1
R1:
    addq  $dr1, #1, $dr1
    T.INSN
""", name="x").replacement(1)
        applied = apply_to_spec(mfi_set(), spec, inner_pattern=None)
        # The addq is untouched; the trigger copy stays (no inner pattern).
        assert len(applied) == 2
