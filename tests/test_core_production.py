"""Unit tests for productions and production sets."""

import pytest

from repro.core.pattern import match_loads, match_opcode, match_stores
from repro.core.production import Production, ProductionError, ProductionSet
from repro.core.replacement import identity_replacement
from repro.isa.build import codeword, ldq
from repro.isa.opcodes import Opcode


class TestProduction:
    def test_direct_or_tagged_exclusive(self):
        with pytest.raises(ProductionError):
            Production(pattern=match_loads())  # neither
        with pytest.raises(ProductionError):
            Production(pattern=match_loads(), seq_id=1, tagged=True)  # both

    def test_direct_selects_fixed_id(self):
        production = Production(pattern=match_loads(), seq_id=7)
        assert production.select_seq_id(ldq(1, 0, 2)) == 7

    def test_tagged_selects_trigger_tag(self):
        production = Production(pattern=match_opcode(Opcode.RES0), tagged=True)
        trigger = codeword(Opcode.RES0, 1, 2, 3, 321)
        assert production.select_seq_id(trigger) == 321

    def test_render(self):
        production = Production(pattern=match_loads(), seq_id=0, name="P1")
        assert production.render() == "P1: T.OPCLASS == load -> R0"
        tagged = Production(pattern=match_opcode(Opcode.RES0), tagged=True)
        assert tagged.render().endswith("T.TAG")


class TestProductionSet:
    def test_define(self):
        pset = ProductionSet("t")
        seq_id = pset.define(match_loads(), identity_replacement())
        assert pset.replacement(seq_id) is not None
        assert len(pset) == 1

    def test_duplicate_replacement_id(self):
        pset = ProductionSet("t")
        pset.add_replacement(0, identity_replacement())
        with pytest.raises(ProductionError):
            pset.add_replacement(0, identity_replacement())

    def test_production_requires_defined_replacement(self):
        pset = ProductionSet("t")
        with pytest.raises(ProductionError):
            pset.add_production(match_loads(), seq_id=9)

    def test_unknown_replacement_lookup(self):
        pset = ProductionSet("t")
        with pytest.raises(ProductionError):
            pset.replacement(5)

    def test_scope_validation(self):
        with pytest.raises(ProductionError):
            ProductionSet("t", scope="root")
        assert ProductionSet("t", scope="kernel").scope == "kernel"

    def test_total_replacement_instrs(self):
        pset = ProductionSet("t")
        pset.define(match_loads(), identity_replacement())
        pset.define(match_stores(), identity_replacement())
        assert pset.total_replacement_instrs() == 2


class TestMerging:
    def test_merge_direct_sets_shifts_ids(self):
        a = ProductionSet("a")
        a.define(match_loads(), identity_replacement())
        b = ProductionSet("b")
        b.define(match_stores(), identity_replacement())
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert len(merged.replacements) == 2
        ids = {p.seq_id for p in merged.productions}
        assert len(ids) == 2

    def test_merge_keeps_kernel_scope(self):
        a = ProductionSet("a", scope="kernel")
        a.define(match_loads(), identity_replacement())
        b = ProductionSet("b")
        b.define(match_stores(), identity_replacement())
        assert a.merged_with(b).scope == "kernel"

    def test_merge_tagged_preserves_tag_ids(self):
        a = ProductionSet("a")
        a.define(match_loads(), identity_replacement())
        b = ProductionSet("b")
        b.add_replacement(100, identity_replacement())
        b.add_production(match_opcode(Opcode.RES0), tagged=True)
        merged = a.merged_with(b)
        assert 100 in merged.replacements

    def test_merge_tag_collision_detected(self):
        a = ProductionSet("a")
        a.add_replacement(0, identity_replacement())
        a.add_production(match_opcode(Opcode.RES0), tagged=True)
        b = ProductionSet("b")
        b.add_replacement(0, identity_replacement())
        b.add_production(match_opcode(Opcode.RES1), tagged=True)
        with pytest.raises(ProductionError):
            a.merged_with(b)

    def test_render_lists_everything(self):
        pset = ProductionSet("mfi", scope="kernel")
        pset.define(match_loads(), identity_replacement(), name="P1")
        text = pset.render()
        assert "mfi" in text and "P1" in text and "T.INSN" in text
