"""Tests for store-address tracing and path profiling."""

import pytest

from repro.acf.profiling import (
    TABLE_ENTRIES,
    attach_path_profiling,
    read_path_counters,
)
from repro.acf.tracing import DR_CURSOR, attach_sat, read_trace_buffer
from repro.isa.build import Imm, addq, bis, bne, bsr, halt, ldq, out, ret, stq, subq
from repro.isa.registers import parse_reg
from repro.program.builder import ProgramBuilder
from repro.sim.functional import run_program

from conftest import A0, A1, RA, T0, V0, ZERO, build_loop_program


class TestStoreAddressTracing:
    def test_all_store_addresses_captured_in_order(self):
        image = build_loop_program(iterations=4)
        installation = attach_sat(image)
        result = installation.run()

        expected = [o.mem_addr for o in run_program(image).ops if o.is_store]
        traced = read_trace_buffer(result, installation.buffer_base)
        assert traced == expected

    def test_application_behaviour_unperturbed(self):
        image = build_loop_program()
        plain = run_program(image)
        result = attach_sat(image).run()
        assert result.outputs == plain.outputs

    def test_cursor_advances_by_stores(self):
        image = build_loop_program(iterations=3)
        installation = attach_sat(image)
        result = installation.run()
        stores = sum(1 for o in run_program(image).ops if o.is_store)
        moved = result.final_regs[DR_CURSOR] - installation.buffer_base
        assert moved == 8 * stores

    def test_displacement_folded_into_traced_address(self):
        b = ProgramBuilder()
        b.alloc_data("buf", 4)
        b.label("main")
        b.load_address(A1, "buf")
        b.emit(stq(ZERO, 24, A1))
        b.emit(halt())
        image = b.build()
        installation = attach_sat(image)
        result = installation.run()
        traced = read_trace_buffer(result, installation.buffer_base)
        assert traced == [image.data_base + 24]


def branchy_program(iterations=6):
    b = ProgramBuilder()
    b.alloc_data("flags", 8, init=[1, 0, 1, 1, 0, 1, 0, 0])
    b.label("main")
    b.emit(bis(ZERO, Imm(iterations), T0))
    b.label("loop")
    b.emit(bsr(RA, "leaf"))
    b.emit(subq(T0, Imm(1), T0))
    b.emit(bne(T0, "loop"))
    b.emit(out(V0))
    b.emit(halt())
    b.label("leaf")
    b.emit(addq(V0, Imm(1), V0))
    b.emit(bne(V0, "leaf_end"))
    b.emit(addq(V0, Imm(10), V0))
    b.label("leaf_end")
    b.emit(ret(RA))
    b.set_entry("main")
    return b.build()


class TestPathProfiling:
    def test_counters_accumulate_at_returns(self):
        image = branchy_program(iterations=5)
        installation = attach_path_profiling(image)
        result = installation.run()
        counters = read_path_counters(result, installation.table_base)
        assert sum(counters.values()) == 5, "one endpoint per leaf return"

    def test_application_behaviour_unperturbed(self):
        image = branchy_program()
        plain = run_program(image)
        result = attach_path_profiling(image).run()
        assert result.outputs == plain.outputs

    def test_distinct_paths_get_distinct_tags(self):
        # The first leaf return's path history contains only the leaf's own
        # branch; every later return also carries the outer loop's back-edge
        # outcome, so exactly two distinct acyclic paths are counted.
        image = branchy_program(iterations=4)
        installation = attach_path_profiling(image)
        counters = read_path_counters(
            installation.run(), installation.table_base
        )
        assert len(counters) == 2
        assert sorted(counters.values()) == [1, 3]

    def test_table_is_bounded(self):
        assert TABLE_ENTRIES == 256
