"""Tests for the serving layer (:mod:`repro.serve`).

Covers the tentpole guarantees:

* wire protocol framing, canonical errors, and typed client-side rebuild;
* session lifecycle — open/step/run/result — with the served observation
  digest byte-identical to :func:`repro.serve.session.batch_digest` and
  to what ``repro-cli run --digest`` prints (the reproducibility oracle);
* LRU machine-pool eviction, checkpoint/restore, and fork all leave the
  digest chain untouched;
* cross-tenant warm starts through the shared, content-keyed
  :class:`ImageCatalog` (one image, one translation store);
* per-tenant budgets enforced with retirement-count precision
  (``used == limit`` exactly) and wall-clock budgets with an injected
  clock — both surfacing as structured
  :class:`~repro.errors.BudgetExceededError`;
* graceful shutdown parking every live session and a fresh server
  resuming them with digest continuity;
* the asyncio TCP shell: same results, same typed errors, over a socket;
* background campaigns (faults/verify/experiment) including surviving a
  scripted worker kill;
* ``serve.*`` telemetry counters and the run-log access log.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.errors import (
    BudgetExceededError,
    ExecutionTimeout,
    ProtocolError,
    SessionError,
)
from repro.serve import protocol
from repro.serve.budgets import TenantLedger
from repro.serve.client import InProcessClient, TcpClient
from repro.serve.server import ReproServer, ServerCore
from repro.serve.session import ImageCatalog, batch_digest, build_installation
from repro.verify.observe import ChainedObserver
from repro.workloads import generate_by_name

#: The canonical serving spec used throughout: the same workload the CI
#: smoke job and BENCH_serve.json drive.
SPEC = {"benchmark": "gzip", "scale": 0.05, "acf": "dise3"}

#: Pinned chained digest of SPEC under the "full" projection.  Anything —
#: dispatch tier, serving, eviction, forking, restarts — that changes this
#: value has broken observable behaviour.
PINNED_DIGEST = \
    "88d57a14a3304a61c44da352438d8391672559b34e71b919db0fa757264bc83f"
PINNED_OBSERVATIONS = 34156


@pytest.fixture(autouse=True)
def _hermetic_serve_env(monkeypatch):
    """Serve knobs come from arguments, not the ambient environment."""
    for name in ("REPRO_SERVE_POOL", "REPRO_SERVE_RETIREMENTS",
                 "REPRO_SERVE_WALL", "REPRO_SERVE_ACCESS_LOG",
                 "REPRO_SERVE_STATE", "REPRO_SERVE_ADMIN_TOKEN",
                 "REPRO_DISPATCH"):
        monkeypatch.delenv(name, raising=False)


@pytest.fixture(scope="module")
def batch():
    """The batch-side oracle for SPEC (computed once per module)."""
    return batch_digest(SPEC)


def make_core(**kwargs):
    kwargs.setdefault("pool_capacity", 4)
    return ServerCore(**kwargs)


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_round_trip(self):
        message = {"id": 3, "op": "step", "steps": 100}
        frame = protocol.encode_message(message)
        assert frame.endswith(b"\n")
        assert protocol.decode_message(frame) == message

    def test_canonical_json_sorted_keys(self):
        frame = protocol.encode_message({"b": 1, "a": 2})
        assert frame == b'{"a": 2, "b": 1}\n'

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError):
            protocol.decode_message(b"not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            protocol.decode_message(b"[1, 2]\n")

    def test_decode_rejects_oversized_frame(self):
        with pytest.raises(ProtocolError):
            protocol.decode_message(b"x" * (protocol.MAX_FRAME_BYTES + 1))

    def test_encode_rejects_oversized_frame(self):
        with pytest.raises(ProtocolError):
            protocol.encode_message({"a": "x" * protocol.MAX_FRAME_BYTES})

    def test_check_request_unknown_op(self):
        with pytest.raises(ProtocolError):
            protocol.check_request({"op": "bogus"})
        with pytest.raises(ProtocolError):
            protocol.check_request({"id": 1})

    def test_budget_error_rebuilds_typed(self):
        original = BudgetExceededError(
            "over", tenant="t0", budget="retirements", limit=10, used=10)
        payload = protocol.error_response(7, original)
        assert payload["id"] == 7 and payload["ok"] is False
        with pytest.raises(BudgetExceededError) as info:
            protocol.raise_error_payload(payload["error"])
        exc = info.value
        assert exc.tenant == "t0" and exc.budget == "retirements"
        assert exc.limit == 10 and exc.used == 10
        assert exc.retryable is False

    def test_session_error_rebuilds_typed(self):
        payload = protocol.error_response(
            1, SessionError("gone", session="s9"))["error"]
        with pytest.raises(SessionError) as info:
            protocol.raise_error_payload(payload)
        assert info.value.session == "s9"

    def test_unknown_error_becomes_remote_error(self):
        payload = protocol.error_response(1, ValueError("boom"))["error"]
        with pytest.raises(protocol.RemoteError) as info:
            protocol.raise_error_payload(payload)
        assert info.value.error_type == "ValueError"
        assert info.value.retryable is False


# ----------------------------------------------------------------------
# Chained observer (the digest that survives serialization)
# ----------------------------------------------------------------------
class TestChainedObserver:
    def test_state_round_trip(self):
        observer = ChainedObserver("full")
        state = observer.state()
        revived = ChainedObserver("full", state=state)
        assert revived.hexdigest() == observer.hexdigest()
        assert revived.count == observer.count == 0
        assert state["digest"] == ChainedObserver.SEED.hex()

    def test_projection_mismatch_rejected(self):
        state = ChainedObserver("full").state()
        with pytest.raises(ValueError):
            ChainedObserver("app", state=state)

    def test_malformed_digest_rejected(self):
        with pytest.raises(ValueError):
            ChainedObserver("full", state={"projection": "full",
                                           "count": 1, "digest": "abcd"})

    def test_clone_continues_independently(self, batch):
        # The module oracle itself exercises the fold; here just pin that
        # a clone starts equal and diverges independently.
        observer = ChainedObserver("full",
                                   state={"projection": "full", "count": 5,
                                          "digest": "11" * 32})
        twin = observer.clone()
        assert twin.hexdigest() == observer.hexdigest()
        twin._emit("obs", None, None, None, None)
        assert twin.count == 6 and observer.count == 5
        assert twin.hexdigest() != observer.hexdigest()


# ----------------------------------------------------------------------
# Machine.checkpoint fork semantics + warm re-bind (satellite)
# ----------------------------------------------------------------------
class TestMachineCheckpointFork:
    @pytest.fixture(scope="class")
    def installation(self):
        return build_installation(
            generate_by_name("gzip", scale=0.05), "dise3")

    def test_checkpoint_carries_counters(self, installation):
        machine = installation.make_machine(record_trace=False)
        with pytest.raises(ExecutionTimeout):
            machine.run(max_steps=5000)
        state = machine.checkpoint()
        counters = state["counters"]
        assert counters["instructions"] == machine.instructions == 5000
        for field in ("app_instructions", "expansions", "pt_misses",
                      "rt_misses"):
            assert field in counters

    def test_restore_forks_an_independent_machine(self, installation):
        parent = installation.make_machine(record_trace=False)
        with pytest.raises(ExecutionTimeout):
            parent.run(max_steps=5000)
        child = installation.make_machine(record_trace=False)
        child.restore(parent.checkpoint())
        assert child.instructions == parent.instructions
        # Advancing the child must not disturb the parent (fork, not move).
        with pytest.raises(ExecutionTimeout):
            child.run(max_steps=1000)
        assert parent.instructions == 5000
        assert child.instructions == 6000
        # Both lineages converge on identical architectural results.
        parent_result = parent.run()
        child_result = child.run()
        assert child_result.outputs == parent_result.outputs
        assert child_result.instructions == parent_result.instructions

    def test_fresh_machine_rebinds_warm(self, installation):
        first = installation.make_machine(record_trace=False)
        first.run()
        fresh = installation.make_machine(record_trace=False)
        assert fresh._warm is True


# ----------------------------------------------------------------------
# Session lifecycle through the in-process client
# ----------------------------------------------------------------------
class TestSessionLifecycle:
    def test_hello(self):
        client = InProcessClient(make_core())
        view = client.hello()
        assert view["protocol"] == protocol.PROTOCOL_VERSION
        assert "open_session" in view["ops"]

    def test_run_to_halt_matches_batch(self, batch):
        client = InProcessClient(make_core(), tenant="t0")
        sid = client.open_session(dict(SPEC))
        view = client.run(sid)
        assert view["halted"] is True
        result = client.result(sid)
        assert result["digest"] == batch["digest"] == PINNED_DIGEST
        assert result["observations"] == batch["observations"] \
            == PINNED_OBSERVATIONS
        assert result["outputs"] == batch["outputs"]
        closed = client.close_session(sid)
        assert closed["digest"] == batch["digest"]

    def test_incremental_steps_match_batch(self, batch):
        client = InProcessClient(make_core(), tenant="t0")
        sid = client.open_session(dict(SPEC))
        view = client.state(sid)
        while not view["halted"]:
            view = client.step(sid, steps=4000)
        assert view["digest"] == batch["digest"]
        assert client.result(sid)["observations"] == batch["observations"]

    def test_result_before_halt_rejected(self):
        client = InProcessClient(make_core(), tenant="t0")
        sid = client.open_session(dict(SPEC))
        client.step(sid, steps=100)
        with pytest.raises(SessionError):
            client.result(sid)

    def test_unknown_session_rejected(self):
        client = InProcessClient(make_core(), tenant="t0")
        with pytest.raises(SessionError) as info:
            client.state("s999")
        assert info.value.session == "s999"

    def test_tenants_cannot_see_each_other(self):
        core = make_core()
        sid = InProcessClient(core, tenant="alice").open_session(dict(SPEC))
        with pytest.raises(SessionError):
            InProcessClient(core, tenant="mallory").state(sid)

    def test_spec_validation(self):
        client = InProcessClient(make_core(), tenant="t0")
        with pytest.raises(ProtocolError):
            client.open_session({"benchmark": "gzip", "typo": 1})
        with pytest.raises(ProtocolError):
            client.open_session({"benchmark": "gzip", "acf": "dise9"})
        with pytest.raises(ProtocolError):
            client.open_session({"benchmark": "gzip", "source": "halt"})
        with pytest.raises(ProtocolError):
            client.open_session({})

    def test_events_stream(self):
        client = InProcessClient(make_core(), tenant="t0")
        sid = client.open_session(dict(SPEC))
        client.step(sid, steps=500)
        view = client.events(sid)
        kinds = [event["kind"] for event in view["events"]]
        assert "machine_built" in kinds and "advanced" in kinds
        tail = client.events(sid, cursor=view["cursor"])
        assert tail["events"] == []
        assert tail["cursor"] == view["cursor"]

    def test_envelope_never_raises(self):
        core = make_core()
        assert core.handle("not a dict")["ok"] is False
        response = core.handle({"id": 7, "op": "bogus"})
        assert response["id"] == 7 and response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"
        assert core.handle({"op": "hello", "tenant": ""})["ok"] is False

    def test_oversized_result_enveloped_in_process(self):
        class _HugeCore:
            def handle(self, request):
                return protocol.ok_response(
                    request.get("id"),
                    {"blob": "x" * protocol.MAX_FRAME_BYTES})

        client = InProcessClient(_HugeCore(), tenant="t0")
        with pytest.raises(ProtocolError) as info:
            client.call("stats")
        assert "limit" in str(info.value)


# ----------------------------------------------------------------------
# Cross-tenant warm starts through the shared catalog
# ----------------------------------------------------------------------
class TestWarmSharing:
    def test_second_tenant_binds_warm(self, batch):
        core = make_core()
        first = InProcessClient(core, tenant="tenant1")
        sid1 = first.open_session(dict(SPEC))
        assert first.state(sid1)["warm_start"] is False
        first.run(sid1)
        second = InProcessClient(core, tenant="tenant2")
        sid2 = second.open_session(dict(SPEC))
        assert second.state(sid2)["warm_start"] is True
        # Warm binding must not change what the run computes.
        second.run(sid2)
        assert second.result(sid2)["digest"] == batch["digest"]
        stats = core.catalog.stats()
        assert stats["images"] == 1 and stats["hits"] >= 1

    def test_different_acfs_do_not_share_installations(self):
        core = make_core()
        client = InProcessClient(core, tenant="t0")
        client.open_session(dict(SPEC))
        client.open_session(dict(SPEC, acf="plain"))
        # One image (content-keyed), two installations (acf-keyed).
        assert core.catalog.stats()["images"] == 1
        assert len(core.catalog._installations) == 2


# ----------------------------------------------------------------------
# LRU eviction is digest-invisible
# ----------------------------------------------------------------------
class TestEviction:
    def test_round_robin_across_a_tiny_pool(self, batch):
        core = make_core(pool_capacity=1)
        client = InProcessClient(core, tenant="t0")
        sids = [client.open_session(dict(SPEC)) for _ in range(2)]
        live = list(sids)
        while live:
            live = [sid for sid in live
                    if not client.step(sid, steps=4000)["halted"]]
        for sid in sids:
            assert client.result(sid)["digest"] == batch["digest"]
        assert core.pool.stats()["evictions"] > 0
        kinds = [e["kind"] for e in client.events(sids[0])["events"]]
        assert "evicted" in kinds


# ----------------------------------------------------------------------
# Checkpoint / restore / fork
# ----------------------------------------------------------------------
class TestCheckpointRestoreFork:
    def test_restore_replays_to_the_same_digest(self, batch):
        client = InProcessClient(make_core(), tenant="t0")
        sid = client.open_session(dict(SPEC))
        client.step(sid, steps=5000)
        saved = client.checkpoint(sid)
        assert client.run(sid)["digest"] == batch["digest"]
        view = client.restore(sid, saved)
        assert view["instructions"] == 5000
        assert view["digest"] == saved["observer"]["digest"]
        assert client.run(sid)["digest"] == batch["digest"]

    def test_checkpoint_survives_json(self, batch):
        client = InProcessClient(make_core(), tenant="t0")
        sid = client.open_session(dict(SPEC))
        client.step(sid, steps=5000)
        saved = json.loads(json.dumps(client.checkpoint(sid)))
        client.restore(sid, saved)
        assert client.run(sid)["digest"] == batch["digest"]

    def test_fork_continues_the_digest_chain(self, batch):
        core = make_core()
        client = InProcessClient(core, tenant="t0")
        parent = client.open_session(dict(SPEC))
        client.step(parent, steps=5000)
        child_view = client.fork(parent)
        child = child_view["session"]
        assert child != parent
        assert child_view["status"] == "forked"
        assert child_view["parent"] == parent
        assert child_view["digest"] == client.state(parent)["digest"]
        # Both lineages independently run to the same final digest.
        assert client.run(child)["digest"] == batch["digest"]
        assert client.run(parent)["digest"] == batch["digest"]

    def test_fork_of_unstarted_session(self, batch):
        client = InProcessClient(make_core(), tenant="t0")
        parent = client.open_session(dict(SPEC))
        child = client.fork(parent)["session"]
        assert client.run(child)["digest"] == batch["digest"]

    def test_restore_spec_mismatch_rejected(self):
        client = InProcessClient(make_core(), tenant="t0")
        dise = client.open_session(dict(SPEC))
        client.step(dise, steps=100)
        saved = client.checkpoint(dise)
        plain = client.open_session(dict(SPEC, acf="plain"))
        client.step(plain, steps=100)
        with pytest.raises(ProtocolError):
            client.restore(plain, saved)

    def test_restore_malformed_checkpoint_rejected(self):
        client = InProcessClient(make_core(), tenant="t0")
        sid = client.open_session(dict(SPEC))
        client.step(sid, steps=100)
        with pytest.raises(ProtocolError):
            client.restore(sid, {"machine": "nope"})


# ----------------------------------------------------------------------
# Budgets (satellite): precise retirement counts, injectable wall clock
# ----------------------------------------------------------------------
class TestBudgets:
    def test_ledger_window_and_settle(self):
        ledger = TenantLedger("t0", retirement_limit=100)
        assert ledger.charge_window(60) == 60
        ledger.settle(60, clamped=False)
        assert ledger.charge_window(60) == 40  # clamped to remaining
        with pytest.raises(BudgetExceededError):
            ledger.settle(40, clamped=True)
        assert ledger.retired == 100
        with pytest.raises(BudgetExceededError) as info:
            ledger.charge_window(1)
        assert info.value.used == info.value.limit == 100

    def test_unlimited_ledger_never_raises(self):
        ledger = TenantLedger("t0")
        assert ledger.charge_window(10 ** 9) == 10 ** 9
        ledger.settle(10 ** 9, clamped=False)
        ledger.check_wall()

    def test_retirement_budget_is_exact(self, batch):
        core = make_core(retirement_limit=10_000)
        client = InProcessClient(core, tenant="t0")
        sid = client.open_session(dict(SPEC))
        with pytest.raises(BudgetExceededError) as info:
            client.run(sid)
        exc = info.value
        assert exc.used == exc.limit == 10_000
        assert exc.budget == "retirements"
        assert exc.tenant == "t0"
        assert exc.retryable is False
        # The budgeted prefix is byte-identical to an unbudgeted run of
        # the same length: the budget changes when the run stops, never
        # what it computes.
        view = client.state(sid)
        assert view["instructions"] == 10_000
        free = InProcessClient(make_core(), tenant="t0")
        other = free.open_session(dict(SPEC))
        assert free.step(other, steps=10_000)["digest"] == view["digest"]

    def test_exhausted_budget_rejects_immediately(self):
        core = make_core(retirement_limit=10_000)
        client = InProcessClient(core, tenant="t0")
        sid = client.open_session(dict(SPEC))
        with pytest.raises(BudgetExceededError):
            client.run(sid)
        with pytest.raises(BudgetExceededError) as info:
            client.step(sid, steps=1)
        assert info.value.used == 10_000

    def test_budget_spans_a_tenants_sessions(self):
        core = make_core(retirement_limit=10_000)
        client = InProcessClient(core, tenant="t0")
        first = client.open_session(dict(SPEC))
        client.step(first, steps=6000)
        second = client.open_session(dict(SPEC))
        with pytest.raises(BudgetExceededError) as info:
            client.step(second, steps=6000)
        assert info.value.used == 10_000
        assert client.state(second)["instructions"] == 4000

    def test_budgets_are_per_tenant(self, batch):
        core = make_core(retirement_limit=10_000)
        poor = InProcessClient(core, tenant="poor")
        sid = poor.open_session(dict(SPEC))
        with pytest.raises(BudgetExceededError):
            poor.run(sid)
        rich = InProcessClient(core, tenant="rich")
        other = rich.open_session(dict(SPEC))
        with pytest.raises(BudgetExceededError):
            rich.run(other)  # same limit, but their own meter
        assert core.budgets.ledger("rich").retired == 10_000

    def test_wall_clock_budget_with_injected_clock(self):
        now = [0.0]
        core = make_core(wall_limit=5.0, clock=lambda: now[0])
        client = InProcessClient(core, tenant="t0")
        sid = client.open_session(dict(SPEC))
        client.step(sid, steps=100)
        now[0] = 6.0
        with pytest.raises(BudgetExceededError) as info:
            client.step(sid, steps=100)
        assert info.value.budget == "wall_clock"
        assert info.value.limit == 5.0
        # Reads stay answerable: the tenant can still collect results.
        assert client.state(sid)["instructions"] == 100
        assert client.events(sid)["events"]
        client.checkpoint(sid)


# ----------------------------------------------------------------------
# Graceful shutdown and resume
# ----------------------------------------------------------------------
class TestShutdownResume:
    def test_shutdown_parks_and_resume_continues(self, tmp_path, batch):
        core = make_core(state_dir=tmp_path, admin_token="op-secret")
        client = InProcessClient(core, tenant="t0")
        sid = client.open_session(dict(SPEC))
        view = client.step(sid, steps=5000)
        summary = client.shutdown("op-secret")
        assert summary["persisted"] == 1
        assert (tmp_path / "sessions.json").is_file()
        # A closing server refuses work but still answers hello/stats.
        with pytest.raises(SessionError):
            client.step(sid, steps=1)
        assert client.hello()["protocol"] == protocol.PROTOCOL_VERSION
        assert client.stats()["closed"] is True

        revived = make_core(state_dir=tmp_path)
        assert not (tmp_path / "sessions.json").exists()  # consumed
        client2 = InProcessClient(revived, tenant="t0")
        resumed = client2.state(sid)
        assert resumed["parked"] is True
        assert resumed["instructions"] == 5000
        assert resumed["digest"] == view["digest"]
        assert client2.run(sid)["digest"] == batch["digest"]
        # New ids keep clear of revived ones.
        assert client2.open_session(dict(SPEC)) != sid
        # Budget usage survived the restart alongside the sessions.
        assert revived.budgets.ledger("t0").retired >= 5000

    def test_shutdown_without_state_dir(self):
        client = InProcessClient(make_core(admin_token="op-secret"),
                                 tenant="t0")
        client.open_session(dict(SPEC))
        summary = client.shutdown("op-secret")
        assert summary["persisted"] == 0 and summary["state_dir"] is None

    def test_shutdown_requires_admin_token(self):
        core = make_core(admin_token="op-secret")
        client = InProcessClient(core, tenant="mallory")
        with pytest.raises(ProtocolError):
            client.shutdown()  # no token
        with pytest.raises(ProtocolError):
            client.shutdown("guess")  # wrong token
        assert core.closed is False
        assert client.stats()["closed"] is False

    def test_shutdown_disabled_without_configured_token(self):
        core = make_core()  # no admin_token, env cleared by fixture
        client = InProcessClient(core, tenant="anyone")
        with pytest.raises(ProtocolError):
            client.shutdown()
        assert core.closed is False
        # The operator-side entry point still works (SIGINT path).
        assert core.shutdown()["persisted"] == 0

    def test_restart_does_not_refill_budgets(self, tmp_path):
        core = make_core(state_dir=tmp_path, retirement_limit=10_000,
                         admin_token="op-secret")
        client = InProcessClient(core, tenant="t0")
        sid = client.open_session(dict(SPEC))
        client.step(sid, steps=6000)
        client.shutdown("op-secret")

        revived = make_core(state_dir=tmp_path, retirement_limit=10_000)
        client2 = InProcessClient(revived, tenant="t0")
        with pytest.raises(BudgetExceededError) as info:
            client2.step(sid, steps=6000)
        # The meter continued from 6000: exactly 4000 more retire.
        assert info.value.used == info.value.limit == 10_000
        assert client2.state(sid)["instructions"] == 10_000

    def test_unsupported_state_schema_rejected(self, tmp_path):
        (tmp_path / "sessions.json").write_text(
            json.dumps({"schema": 999, "sessions": []}))
        with pytest.raises(ProtocolError):
            make_core(state_dir=tmp_path)


# ----------------------------------------------------------------------
# The asyncio TCP shell
# ----------------------------------------------------------------------
@pytest.fixture
def tcp_server():
    server = ReproServer(core=ServerCore(pool_capacity=2))
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    holder = {}

    async def _main():
        await server.start()
        ready.set()
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass

    def _thread():
        asyncio.set_event_loop(loop)
        holder["task"] = loop.create_task(_main())
        try:
            loop.run_until_complete(holder["task"])
            # Drain lingering per-connection handlers before closing.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
        finally:
            loop.close()

    thread = threading.Thread(target=_thread, name="serve-test", daemon=True)
    thread.start()
    assert ready.wait(10), "server did not start"
    yield server
    loop.call_soon_threadsafe(holder["task"].cancel)
    thread.join(10)


class TestTcpTransport:
    def test_served_digest_over_the_wire(self, tcp_server, batch):
        with TcpClient("127.0.0.1", tcp_server.port, tenant="t0") as client:
            assert client.hello()["protocol"] == protocol.PROTOCOL_VERSION
            sid = client.open_session(dict(SPEC))
            view = client.run(sid)
            assert view["halted"] is True
            assert client.result(sid)["digest"] == batch["digest"]

    def test_typed_errors_cross_the_wire(self, tcp_server):
        with TcpClient("127.0.0.1", tcp_server.port, tenant="t0") as client:
            with pytest.raises(SessionError) as info:
                client.state("s404")
            assert info.value.session == "s404"

    def test_connections_share_the_core(self, tcp_server):
        with TcpClient("127.0.0.1", tcp_server.port, tenant="t0") as one:
            sid = one.open_session(dict(SPEC))
        with TcpClient("127.0.0.1", tcp_server.port, tenant="t0") as two:
            assert two.state(sid)["session"] == sid

    def test_blank_lines_ignored(self, tcp_server):
        client = TcpClient("127.0.0.1", tcp_server.port, tenant="t0")
        try:
            client._sock.sendall(b"\n")
            assert client.hello()["server"] == "repro-serve"
        finally:
            client.close()

    def test_large_frames_cross_the_wire(self, tcp_server):
        # Frames well past asyncio's 64 KiB default stream limit (e.g.
        # restore checkpoints, source uploads) must round-trip; handlers
        # ignore the unknown padding field.
        with TcpClient("127.0.0.1", tcp_server.port, tenant="t0") as client:
            view = client.call("hello", pad="x" * (512 * 1024))
            assert view["server"] == "repro-serve"

    def test_oversized_frame_gets_error_not_hangup(self, tcp_server):
        client = TcpClient("127.0.0.1", tcp_server.port, tenant="t0",
                           timeout=120.0)
        try:
            client._sock.sendall(
                b"x" * (protocol.MAX_FRAME_BYTES + 64 * 1024) + b"\n")
            line = client._file.readline()
            response = protocol.decode_message(line)
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            assert "limit" in response["error"]["message"]
            # The connection survives and keeps serving.
            assert client.hello()["server"] == "repro-serve"
        finally:
            client.close()

    def test_oversized_response_gets_error_envelope(self, tcp_server):
        blob = {"blob": "x" * protocol.MAX_FRAME_BYTES}
        tcp_server.core.handle = lambda request: protocol.ok_response(
            request.get("id"), blob)
        try:
            with TcpClient("127.0.0.1", tcp_server.port, tenant="t0",
                           timeout=120.0) as client:
                with pytest.raises(ProtocolError) as info:
                    client.call("stats")
                assert "limit" in str(info.value)
        finally:
            del tcp_server.core.handle  # restore the real bound method


# ----------------------------------------------------------------------
# Campaigns through the service
# ----------------------------------------------------------------------
def _poll_until_done(client, campaign, timeout=300.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        view = client.campaign_poll(campaign)
        if view["status"] != "running":
            return view
        time.sleep(0.1)
    raise AssertionError("campaign did not finish in time")


class TestCampaigns:
    def test_faults_campaign(self):
        client = InProcessClient(make_core(), tenant="t0")
        campaign = client.campaign_start("faults", {
            "faults": 3, "scale": 0.03, "seed": 11})
        view = _poll_until_done(client, campaign)
        assert view["status"] == "done"
        assert view["report"]

    def test_faults_campaign_survives_killed_worker(self):
        # ChaosPlan SIGKILLs the worker running fault f0001 on its first
        # attempt; the fabric retries and the campaign — and the server
        # above it — completes as if nothing happened.
        core = make_core()
        client = InProcessClient(core, tenant="t0")
        baseline = client.campaign_start("faults", {
            "faults": 3, "scale": 0.03, "seed": 11, "jobs": 2})
        chaotic = client.campaign_start("faults", {
            "faults": 3, "scale": 0.03, "seed": 11, "jobs": 2,
            "chaos_kills": [["f0001", 1]]})
        expected = _poll_until_done(client, baseline)
        view = _poll_until_done(client, chaotic)
        assert view["status"] == "done"
        assert json.dumps(view["report"], sort_keys=True) == \
            json.dumps(expected["report"], sort_keys=True)
        # The server itself is still healthy after the lost worker.
        assert client.hello()["protocol"] == protocol.PROTOCOL_VERSION

    def test_verify_campaign(self):
        client = InProcessClient(make_core(), tenant="t0")
        campaign = client.campaign_start("verify", {
            "scale": 0.02, "oracles": ["roundtrip"]})
        view = _poll_until_done(client, campaign)
        assert view["status"] == "done"

    def test_campaign_errors_are_enveloped(self):
        client = InProcessClient(make_core(), tenant="t0")
        campaign = client.campaign_start("experiment", {"name": "bogus"})
        view = _poll_until_done(client, campaign)
        assert view["status"] == "error"
        assert view["error"]["type"] == "ProtocolError"

    def test_campaigns_are_tenant_scoped(self):
        core = make_core()
        alice = InProcessClient(core, tenant="alice")
        mallory = InProcessClient(core, tenant="mallory")
        campaign = alice.campaign_start("experiment", {"name": "bogus"})
        # Another tenant polling the (sequential) id gets the same error
        # as a nonexistent campaign — no probing, no report reads.
        with pytest.raises(ProtocolError):
            mallory.campaign_poll(campaign)
        view = _poll_until_done(alice, campaign)
        assert view["status"] == "error"
        assert campaign in alice.stats()["campaigns"]
        assert campaign not in mallory.stats()["campaigns"]

    def test_unknown_campaign_kind_rejected(self):
        client = InProcessClient(make_core(), tenant="t0")
        with pytest.raises(ProtocolError):
            client.campaign_start("bake-off")
        with pytest.raises(ProtocolError):
            client.campaign_poll("c404")


# ----------------------------------------------------------------------
# The batch-CLI side of the reproducibility oracle
# ----------------------------------------------------------------------
class TestCliOracle:
    def test_served_digest_equals_cli_digest(self, batch, capsys):
        """Acceptance pin: ``repro-cli run --digest`` prints the same
        chained digest a served session computes for the same spec."""
        from repro.tools.cli import main

        assert main(["run", "--benchmark", "gzip", "--scale", "0.05",
                     "--mfi", "dise3", "--digest"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines()
                 if line.startswith("digest: ")]
        assert len(lines) == 1
        cli_digest = lines[0].split()[1]
        assert cli_digest == batch["digest"] == PINNED_DIGEST
        assert f"({batch['observations']} observations" in lines[0]

        client = InProcessClient(make_core(), tenant="t0")
        sid = client.open_session(dict(SPEC))
        assert client.run(sid)["digest"] == cli_digest


# ----------------------------------------------------------------------
# Telemetry: serve.* counters and the run-log access log
# ----------------------------------------------------------------------
class TestServeTelemetry:
    @pytest.fixture
    def telemetry_on(self):
        from repro.telemetry import events as events_mod
        from repro.telemetry import registry as registry_mod

        registry_mod.configure(True)
        registry_mod.get_registry().reset()
        try:
            yield events_mod
        finally:
            events_mod._CURRENT = events_mod._INERT_RUN
            registry_mod.configure(None)
            registry_mod.get_registry().reset()

    def test_counters_and_access_log(self, telemetry_on, tmp_path):
        from repro.telemetry import validate_log
        from repro.telemetry.registry import get_registry
        from repro.telemetry.summary import RunView, render_summary

        telemetry_on.start_run(tmp_path, argv=["serve-test"])
        core = make_core(pool_capacity=2)
        client = InProcessClient(core, tenant="t0")
        sid = client.open_session(dict(SPEC))
        client.step(sid, steps=1000)
        with pytest.raises(SessionError):
            client.state("s404")
        client.close_session(sid)
        core.shutdown()

        metrics = get_registry().snapshot()
        # Successful requests: open_session, step, close_session.
        assert metrics["serve.requests"]["value"] == 3
        assert metrics["serve.requests.open_session"]["value"] == 1
        assert metrics["serve.sessions.opened"]["value"] == 1
        assert metrics["serve.sessions.closed"]["value"] == 1
        assert metrics["serve.errors"]["value"] == 1
        assert metrics["serve.errors.SessionError"]["value"] == 1
        assert metrics["serve.retired"]["value"] == 1000
        assert metrics["serve.shutdowns"]["value"] == 1

        path = telemetry_on.finish_run("ok")
        assert validate_log(path) > 0
        run = RunView(path)
        # One serve.request span per request — the per-request trace tree
        # that makes the run log double as an access log.
        spans = [s for s in run.spans if s.get("name") == "serve.request"]
        assert len(spans) >= 4
        text = render_summary(run)
        assert "## Serve sessions" in text
        assert "op open_session" in text
        assert "sessions opened" in text

class TestStats:
    def test_stats_shape(self):
        client = InProcessClient(make_core(pool_capacity=3), tenant="t0")
        sid = client.open_session(dict(SPEC))
        client.step(sid, steps=100)
        stats = client.stats()
        assert stats["sessions"] == 1
        assert stats["pool"]["capacity"] == 3
        assert stats["pool"]["builds"] >= 1
        assert stats["catalog"]["images"] == 1
        assert stats["budgets"][0]["tenant"] == "t0"
        assert stats["closed"] is False
