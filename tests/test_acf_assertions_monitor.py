"""Tests for code assertions (watchpoints) and reference monitors."""

import pytest

from repro.acf.assertions import WATCH_FAULT_CODE, attach_watchpoint
from repro.acf.monitor import POLICY_FAULT_CODE, attach_monitor
from repro.isa.build import Imm, addq, bis, halt, out, stq
from repro.isa.opcodes import Opcode
from repro.program.builder import ProgramBuilder
from repro.sim.functional import run_program

from conftest import A0, A1, T0, ZERO, build_loop_program


def store_at_offsets(offsets):
    b = ProgramBuilder()
    b.alloc_data("buf", 16)
    b.label("main")
    b.load_address(A1, "buf")
    for off in offsets:
        b.emit(stq(ZERO, off, A1))
    b.emit(out(ZERO))
    b.emit(halt())
    return b.build()


class TestWatchpoints:
    def test_store_inside_range_faults(self):
        image = store_at_offsets([8, 40])
        lo = image.data_base + 32
        result = attach_watchpoint(image, lo, lo + 16).run()
        assert result.fault_code == WATCH_FAULT_CODE

    def test_store_outside_range_passes(self):
        image = store_at_offsets([8, 16])
        lo = image.data_base + 64
        result = attach_watchpoint(image, lo, lo + 16).run()
        assert result.fault_code is None
        assert result.outputs == [0]

    def test_boundary_semantics_half_open(self):
        image = store_at_offsets([16])
        base = image.data_base
        # hi boundary excluded.
        assert attach_watchpoint(image, base, base + 16).run().fault_code is None
        # lo boundary included.
        assert (attach_watchpoint(image, base + 16, base + 24).run()
                .fault_code == WATCH_FAULT_CODE)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            attach_watchpoint(build_loop_program(), 100, 100)

    def test_inactive_assertion_costs_nothing(self):
        image = build_loop_program()
        installation = attach_watchpoint(image, 0, 8)
        machine = installation.make_machine()
        machine.controller.set_active("watchpoint", False)
        result = machine.run()
        assert result.expansions == 0

    def test_check_fully_contained_in_sequence(self):
        """The watch check uses DISE-internal control only: no extra
        application-level control transfers appear."""
        image = store_at_offsets([8])
        result = attach_watchpoint(image, 0, 8).run()
        dise_branches = [o for o in result.ops if o.ctrl == "dise"]
        assert dise_branches, "check uses DISEPC-level branches"


class TestReferenceMonitor:
    def test_denied_opcode_faults(self):
        image = build_loop_program()   # uses out for its checksum
        result = attach_monitor(image, deny=[Opcode.OUT]).run()
        assert result.fault_code == POLICY_FAULT_CODE
        assert result.outputs == [], "the denied out never executed"

    def test_unrelated_opcodes_unaffected(self):
        image = build_loop_program()
        plain = run_program(image)
        result = attach_monitor(image, deny=[Opcode.MULQ]).run()
        assert result.outputs == plain.outputs
        assert result.fault_code is None

    def test_budgeted_opcode_within_budget(self):
        image = build_loop_program(iterations=3)   # 3 stores
        result = attach_monitor(image, budgeted=[Opcode.STQ], budget=5).run()
        assert result.fault_code is None

    def test_budget_exhaustion_faults(self):
        image = build_loop_program(iterations=10)   # 10 stores
        result = attach_monitor(image, budgeted=[Opcode.STQ], budget=4).run()
        assert result.fault_code == POLICY_FAULT_CODE

    def test_budget_boundary_exact(self):
        image = build_loop_program(iterations=4)
        assert attach_monitor(image, budgeted=[Opcode.STQ],
                              budget=4).run().fault_code is None
        assert attach_monitor(image, budgeted=[Opcode.STQ],
                              budget=3).run().fault_code == POLICY_FAULT_CODE

    def test_deny_and_budget_compose(self):
        image = build_loop_program()
        result = attach_monitor(image, deny=[Opcode.MULQ],
                                budgeted=[Opcode.STQ], budget=100).run()
        assert result.fault_code is None


class TestValueAssertions:
    """Assertions on data criteria (T.RT), not just addresses."""

    def make_image(self, values):
        from repro.isa.build import bis, sll

        b = ProgramBuilder()
        b.alloc_data("slot", 2)
        b.label("main")
        b.load_address(A1, "slot")
        for value in values:
            b.emit(bis(ZERO, Imm(value), T0))
            b.emit(stq(T0, 0, A1))
        b.emit(out(ZERO))
        b.emit(halt())
        return b.build()

    def test_forbidden_value_faults(self):
        from repro.acf.assertions import attach_value_assertion, WATCH_FAULT_CODE

        image = self.make_image([5, 9, 13])
        installation = attach_value_assertion(image, image.data_base, 9)
        result = installation.run()
        assert result.fault_code == WATCH_FAULT_CODE
        # The faulting store never executed; the slot still holds 5.
        assert result.final_memory.read(image.data_base) == 5

    def test_allowed_values_pass(self):
        from repro.acf.assertions import attach_value_assertion

        image = self.make_image([5, 9, 13])
        installation = attach_value_assertion(image, image.data_base, 99)
        result = installation.run()
        assert result.fault_code is None
        assert result.final_memory.read(image.data_base) == 13

    def test_same_value_elsewhere_passes(self):
        from repro.acf.assertions import attach_value_assertion

        image = self.make_image([9])
        # Watch a different address: storing 9 to slot+0 is fine.
        installation = attach_value_assertion(
            image, image.data_base + 8, 9
        )
        assert installation.run().fault_code is None
