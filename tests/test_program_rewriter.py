"""Unit tests for the binary-rewriting substrate."""

from repro.isa.assembler import Label
from repro.isa.build import Imm, addq, bis, bne, bsr, halt, jsr, ldq, nop, ret, stq
from repro.isa.opcodes import OpClass, Opcode
from repro.program.builder import LoadAddress, ProgramBuilder
from repro.program.rewriter import image_to_items, rewrite_image
from repro.sim.functional import run_program

from conftest import A0, A1, RA, T0, ZERO, build_loop_program


class TestImageToItems:
    def test_round_trips_through_rebuild(self, loop_image):
        items = image_to_items(loop_image)
        b = ProgramBuilder()
        b.adopt_data(loop_image.data_words, loop_image.data_size)
        b.emit_items(items)
        b.set_entry("main")
        rebuilt = b.build()
        assert rebuilt.instructions == loop_image.instructions
        assert rebuilt.target_index == loop_image.target_index

    def test_synthesises_labels_for_anonymous_targets(self):
        b = ProgramBuilder()
        b.emit(bne(T0, 1))   # numeric target: the halt
        b.emit(nop())
        b.emit(halt())
        image = b.build()
        items = image_to_items(image)
        labels = [i for i in items if isinstance(i, Label)]
        assert any(l.name.startswith(".bt") for l in labels)

    def test_reconstructs_text_load_addresses(self, call_image):
        b = ProgramBuilder()
        b.label("main")
        b.load_address(27, "f")
        b.emit(jsr(RA, 27))
        b.emit(halt())
        b.label("f")
        b.emit(ret(RA))
        image = b.build()
        items = image_to_items(image)
        loads = [i for i in items if isinstance(i, LoadAddress)]
        assert loads == [LoadAddress(27, "f")]


class TestRewriteImage:
    def test_insertion_before_matches(self, loop_image):
        rewritten = rewrite_image(
            loop_image,
            predicate=lambda i: i.opclass is OpClass.STORE,
            insertion=lambda i, idx: [nop()],
        )
        stores = loop_image.count_matching(lambda i: i.opclass is OpClass.STORE)
        assert rewritten.instruction_count == (
            loop_image.instruction_count + stores
        )
        # Every store is now preceded by the inserted nop.
        for index, instr in enumerate(rewritten.instructions):
            if instr.opclass is OpClass.STORE:
                assert rewritten.instructions[index - 1].opcode is Opcode.NOP

    def test_rewritten_program_equivalent(self, loop_image):
        rewritten = rewrite_image(
            loop_image,
            predicate=lambda i: i.opclass in (OpClass.LOAD, OpClass.STORE),
            insertion=lambda i, idx: [bis(ZERO, ZERO, ZERO)],
        )
        original = run_program(loop_image)
        modified = run_program(rewritten)
        assert modified.outputs == original.outputs
        assert modified.instructions > original.instructions

    def test_branch_retargeting_preserved_with_calls(self, call_image):
        rewritten = rewrite_image(
            call_image,
            predicate=lambda i: i.opclass is OpClass.LOAD,
            insertion=lambda i, idx: [nop(), nop()],
        )
        original = run_program(call_image)
        modified = run_program(rewritten)
        assert modified.outputs == original.outputs

    def test_text_load_addresses_re_resolved(self):
        b = ProgramBuilder()
        b.alloc_data("x", 1, init=[5])
        b.label("main")
        b.emit(addq(ZERO, Imm(1), T0))   # insertion site before 'f'
        b.load_address(27, "f")
        b.emit(jsr(RA, 27))
        b.emit(halt())
        b.label("f")
        b.emit(addq(ZERO, Imm(3), A0))
        b.emit(ret(RA))
        b.set_entry("main")
        image = b.build()
        # Insert two nops before every addq: 'f' moves.
        rewritten = rewrite_image(
            image,
            predicate=lambda i: i.opcode is Opcode.ADDQ,
            insertion=lambda i, idx: [nop(), nop()],
        )
        assert rewritten.symbols["f"] != image.symbols["f"]
        result = run_program(rewritten)
        assert result.halted and result.fault_code is None
        assert result.final_regs[A0] == 3
