"""Unit and property tests for binary encoding/decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.build import (
    Imm,
    addq,
    beq,
    bis,
    codeword,
    fault,
    halt,
    jsr,
    ldq,
    nop,
    out,
    ret,
    stq,
)
from repro.isa.encoding import (
    BRANCH_DISP_MAX,
    BRANCH_DISP_MIN,
    EncodingError,
    MEM_DISP_MAX,
    MEM_DISP_MIN,
    OPERATE_LIT_MAX,
    canonicalize,
    decode,
    decode_stream,
    encode,
    encode_stream,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Opcode
from repro.isa.registers import dise_reg

# ----------------------------------------------------------------------
# Hypothesis strategies for encodable instructions
# ----------------------------------------------------------------------
user_reg = st.integers(min_value=0, max_value=31)

mem_instr = st.builds(
    lambda op, ra, rb, disp: Instruction(op, ra=ra, rb=rb, imm=disp),
    st.sampled_from([Opcode.LDA, Opcode.LDAH, Opcode.LDL, Opcode.LDQ,
                     Opcode.STL, Opcode.STQ]),
    user_reg, user_reg,
    st.integers(min_value=MEM_DISP_MIN, max_value=MEM_DISP_MAX),
)

operate_reg_instr = st.builds(
    lambda op, ra, rb, rc: Instruction(op, ra=ra, rb=rb, rc=rc),
    st.sampled_from([Opcode.ADDQ, Opcode.SUBQ, Opcode.MULQ, Opcode.AND,
                     Opcode.BIS, Opcode.XOR, Opcode.SLL, Opcode.SRL,
                     Opcode.SRA, Opcode.CMPEQ, Opcode.CMPLT, Opcode.CMPLE,
                     Opcode.CMPULT, Opcode.CMOVEQ, Opcode.CMOVNE]),
    user_reg, user_reg, user_reg,
)

operate_imm_instr = st.builds(
    lambda op, ra, lit, rc: Instruction(op, ra=ra, rb=None, rc=rc, imm=lit),
    st.sampled_from([Opcode.ADDQ, Opcode.SUBQ, Opcode.AND, Opcode.BIS,
                     Opcode.SLL, Opcode.SRL]),
    user_reg,
    st.integers(min_value=0, max_value=OPERATE_LIT_MAX),
    user_reg,
)

branch_instr = st.builds(
    lambda op, ra, disp: Instruction(op, ra=ra, imm=disp),
    st.sampled_from([Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BLE,
                     Opcode.BGT, Opcode.BGE, Opcode.BR, Opcode.BSR,
                     Opcode.DBEQ, Opcode.DBNE, Opcode.DBR]),
    user_reg,
    st.integers(min_value=BRANCH_DISP_MIN, max_value=BRANCH_DISP_MAX),
)

jump_instr = st.builds(
    lambda op, ra, rb: Instruction(op, ra=ra, rb=rb),
    st.sampled_from([Opcode.JMP, Opcode.JSR, Opcode.RET]),
    user_reg, user_reg,
)

codeword_instr = st.builds(
    lambda op, p1, p2, p3, tag: Instruction(op, ra=p1, rb=p2, rc=p3, imm=tag),
    st.sampled_from([Opcode.RES0, Opcode.RES1, Opcode.RES2, Opcode.RES3]),
    user_reg, user_reg, user_reg,
    st.integers(min_value=0, max_value=2047),
)

nullary_instr = st.sampled_from([Instruction(Opcode.NOP),
                                 Instruction(Opcode.HALT)])

any_instr = st.one_of(mem_instr, operate_reg_instr, operate_imm_instr,
                      branch_instr, jump_instr, codeword_instr,
                      nullary_instr)


class TestRoundTripProperty:
    @given(any_instr)
    def test_decode_encode_round_trip(self, instr):
        assert decode(encode(instr)) == canonicalize(instr)

    @given(st.lists(any_instr, max_size=32))
    def test_stream_round_trip(self, instrs):
        data = encode_stream(instrs)
        assert len(data) == 4 * len(instrs)
        assert decode_stream(data) == [canonicalize(i) for i in instrs]

    @given(any_instr)
    def test_encoding_is_32_bits(self, instr):
        assert 0 <= encode(instr) < (1 << 32)

    @given(any_instr, any_instr)
    def test_encoding_injective_modulo_canonical(self, a, b):
        if canonicalize(a) != canonicalize(b):
            assert encode(a) != encode(b)


class TestSpecificEncodings:
    def test_opcode_in_top_bits(self):
        assert encode(ldq(1, 0, 2)) >> 26 == Opcode.LDQ.code

    def test_negative_displacement(self):
        instr = ldq(1, -8, 2)
        assert decode(encode(instr)) == instr

    def test_negative_branch_displacement(self):
        instr = beq(1, -100)
        assert decode(encode(instr)) == instr

    def test_operate_literal_flag(self):
        word = encode(addq(1, Imm(5), 2))
        assert word & (1 << 12), "imm flag must be set"
        word = encode(addq(1, 3, 2))
        assert not word & (1 << 12)


class TestEncodingErrors:
    def test_unresolved_target_rejected(self):
        with pytest.raises(EncodingError):
            encode(beq(1, "label"))

    def test_dise_register_rejected(self):
        with pytest.raises(EncodingError):
            encode(addq(dise_reg(1), 2, 3))

    def test_mem_disp_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(ldq(1, MEM_DISP_MAX + 1, 2))

    def test_operate_literal_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(addq(1, Imm(256), 2))
        with pytest.raises(EncodingError):
            encode(addq(1, Imm(-1), 2))

    def test_branch_disp_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(beq(1, BRANCH_DISP_MAX + 1))

    def test_codeword_tag_out_of_range(self):
        cw = codeword(Opcode.RES0, 1, 2, 3, 0).with_fields(imm=4096)
        with pytest.raises(EncodingError):
            encode(cw)

    def test_decode_rejects_bad_width(self):
        with pytest.raises(ValueError):
            decode(1 << 32)

    def test_decode_rejects_unknown_opcode(self):
        unused = next(c for c in range(64)
                      if c not in {op.code for op in Opcode})
        with pytest.raises(ValueError):
            decode(unused << 26)

    def test_stream_rejects_ragged_length(self):
        with pytest.raises(ValueError):
            decode_stream(b"\x00" * 6)
