"""Unit tests for the branch predictor."""

from repro.sim.branch import BranchPredictor, BranchPredictorConfig


class TestGshare:
    def test_learns_constant_direction(self):
        predictor = BranchPredictor()
        pc = 0x400010
        for _ in range(8):
            predictor.predict_and_update(pc, True)
        assert predictor.predict_and_update(pc, True) is False

    def test_counter_hysteresis(self):
        predictor = BranchPredictor()
        pc = 0x400010
        for _ in range(8):
            predictor.predict_and_update(pc, True)
        # One not-taken outcome shouldn't flip the prediction...
        predictor.predict_and_update(pc, False)
        # ...but history changed, so just check the stats make sense.
        assert predictor.cond_mispredicts >= 1

    def test_alternating_pattern_learnable_via_history(self):
        predictor = BranchPredictor()
        pc = 0x400010
        outcomes = [i % 2 == 0 for i in range(200)]
        for taken in outcomes:
            predictor.predict_and_update(pc, taken)
        # After warmup the history-indexed counters track the alternation.
        late_mispredicts = 0
        for i, taken in enumerate(outcomes):
            if predictor.predict_and_update(pc, taken):
                late_mispredicts += 1
        assert late_mispredicts < len(outcomes) * 0.1

    def test_mispredict_rate_statistic(self):
        predictor = BranchPredictor()
        predictor.predict_and_update(0, True)
        assert 0.0 <= predictor.cond_mispredict_rate <= 1.0


class TestBtbAndRas:
    def test_btb_learns_target(self):
        predictor = BranchPredictor()
        pc, target = 0x400100, 0x400800
        assert predictor.predict_indirect(pc, target) is True   # cold
        assert predictor.predict_indirect(pc, target) is False

    def test_btb_target_change_mispredicts(self):
        predictor = BranchPredictor()
        pc = 0x400100
        predictor.predict_indirect(pc, 0x400800)
        assert predictor.predict_indirect(pc, 0x400900) is True

    def test_return_stack(self):
        predictor = BranchPredictor()
        # call pushes; matching return pops and predicts correctly.
        predictor.predict_indirect(0x400100, 0x400800, is_call=True,
                                   return_addr=0x400104)
        assert predictor.predict_indirect(
            0x400810, 0x400104, is_return=True
        ) is False

    def test_mismatched_return_mispredicts(self):
        predictor = BranchPredictor()
        predictor.push_return(0x400104)
        assert predictor.predict_indirect(
            0x400810, 0x999999, is_return=True
        ) is True

    def test_empty_ras_mispredicts(self):
        predictor = BranchPredictor()
        assert predictor.predict_indirect(0x400810, 0x400104,
                                          is_return=True) is True

    def test_ras_depth_bounded(self):
        predictor = BranchPredictor(BranchPredictorConfig(ras_entries=2))
        for addr in (1, 2, 3):
            predictor.push_return(addr * 4)
        assert len(predictor._ras) == 2

    def test_nested_calls_lifo(self):
        predictor = BranchPredictor()
        predictor.push_return(0x10)
        predictor.push_return(0x20)
        assert predictor.predict_indirect(0, 0x20, is_return=True) is False
        assert predictor.predict_indirect(0, 0x10, is_return=True) is False
