"""Tests for the fine-grain DSM checks ACF."""

import pytest

from repro.acf.dsm import (
    LINE_BYTES,
    attach_dsm,
    dsm_check_spec,
    lines_present,
    remote_misses,
)
from repro.isa.build import Imm, addq, bis, bne, halt, ldq, out, stq, subq
from repro.program.builder import ProgramBuilder
from repro.sim.functional import run_program

from conftest import A0, A1, T0, ZERO, build_loop_program


def shared_walk_program(words=24, passes=2):
    """Walks a data array twice; the array will be declared shared."""
    b = ProgramBuilder()
    b.alloc_data("arr", words, init=list(range(words)))
    b.label("main")
    b.emit(bis(ZERO, Imm(passes), T0))
    b.label("outer")
    b.load_address(A1, "arr")
    b.emit(bis(ZERO, Imm(words), 5))
    b.label("inner")
    b.emit(ldq(A0, 0, A1))
    b.emit(addq(A0, Imm(1), A0))
    b.emit(stq(A0, 0, A1))
    b.emit(addq(A1, Imm(8), A1))
    b.emit(subq(5, Imm(1), 5))
    b.emit(bne(5, "inner"))
    b.emit(subq(T0, Imm(1), T0))
    b.emit(bne(T0, "outer"))
    b.emit(out(A0))
    b.emit(halt())
    b.set_entry("main")
    return b.build()


def shared_bounds(image, words):
    lo = image.data_base
    size = ((words * 8 + LINE_BYTES - 1) // LINE_BYTES) * LINE_BYTES
    return lo, lo + size


class TestDsmSpec:
    def test_sequence_shape(self):
        spec = dsm_check_spec()
        assert len(spec) == 15
        assert spec.trigger_copy_offsets == (14,)
        assert all(
            r.imm.value == 14 for r in spec.instrs if r.is_dise_branch
        ), "all fast paths skip to the trigger"

    def test_range_validation(self):
        image = build_loop_program()
        with pytest.raises(ValueError):
            attach_dsm(image, 100, 100)
        with pytest.raises(ValueError):
            attach_dsm(image, 0, 100)   # not line-aligned


class TestDsmBehaviour:
    def test_misses_equal_distinct_lines_first_touch(self):
        words = 24   # 3 lines
        image = shared_walk_program(words=words, passes=1)
        lo, hi = shared_bounds(image, words)
        installation = attach_dsm(image, lo, hi)
        result = installation.run()
        assert remote_misses(result) == (hi - lo) // LINE_BYTES
        assert lines_present(result, installation) == (hi - lo) // LINE_BYTES

    def test_second_pass_hits(self):
        words = 24
        image = shared_walk_program(words=words, passes=3)
        lo, hi = shared_bounds(image, words)
        result = attach_dsm(image, lo, hi).run()
        # Presence persists: later passes add no misses.
        assert remote_misses(result) == (hi - lo) // LINE_BYTES

    def test_private_accesses_skip_the_machinery(self):
        words = 24
        image = shared_walk_program(words=words, passes=1)
        # Declare a disjoint (higher) range shared: every access is private.
        lo = image.data_base + (1 << 20)
        installation = attach_dsm(image, lo, lo + 4 * LINE_BYTES)
        result = installation.run()
        assert remote_misses(result) == 0
        assert lines_present(result, installation) == 0

    def test_application_unperturbed(self):
        words = 16
        image = shared_walk_program(words=words)
        plain = run_program(image)
        lo, hi = shared_bounds(image, words)
        result = attach_dsm(image, lo, hi).run()
        assert result.outputs == plain.outputs
        assert result.fault_code is None

    def test_every_memory_op_checked(self):
        words = 8
        image = shared_walk_program(words=words, passes=1)
        lo, hi = shared_bounds(image, words)
        result = attach_dsm(image, lo, hi).run()
        memops = sum(
            1 for o in run_program(image).ops if o.mem_addr is not None
        )
        assert result.expansions == memops

    def test_checks_use_only_dise_internal_control(self):
        words = 8
        image = shared_walk_program(words=words, passes=1)
        lo, hi = shared_bounds(image, words)
        result = attach_dsm(image, lo, hi).run()
        # No application-level branches were injected: every non-trigger
        # control transfer in replacement sequences is a DISE branch.
        for op in result.ops:
            if op.disepc > 0 and op.ctrl is not None:
                assert op.ctrl == "dise" or op.is_trigger_ctrl
