"""Unit tests for the production-language parser."""

import pytest

from repro.core.directives import AbsTarget, Lit, TrigField
from repro.core.language import LanguageError, parse_productions
from repro.core.replacement import ReplacementSpec, TRIGGER_INSN
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import dise_reg

from conftest import MFI_SOURCE


class TestPatterns:
    def test_opclass_condition(self):
        pset = parse_productions("P1: T.OPCLASS == store -> R1\nR1:\n    T.INSN\n")
        assert pset.productions[0].pattern.opclass is OpClass.STORE

    def test_opcode_condition(self):
        pset = parse_productions("P1: T.OP == ldq -> R1\nR1:\n    T.INSN\n")
        assert pset.productions[0].pattern.opcode is Opcode.LDQ

    def test_register_condition(self):
        pset = parse_productions(
            "P1: T.OPCLASS == load && T.RS == sp -> R1\nR1:\n    T.INSN\n"
        )
        pattern = pset.productions[0].pattern
        assert pattern.regs == {"rs": 30}

    def test_imm_conditions(self):
        pset = parse_productions(
            "P1: T.OPCLASS == cond_branch && T.IMM < 0 -> R1\n"
            "P2: T.OPCLASS == cond_branch && T.IMM == 4 -> R1\n"
            "R1:\n    T.INSN\n"
        )
        assert pset.productions[0].pattern.imm_sign == -1
        assert pset.productions[1].pattern.imm == 4

    def test_tagged_production(self):
        pset = parse_productions(
            "P1: T.OP == res0 -> T.TAG\n",
            tagged_dictionary={0: ReplacementSpec(instrs=(TRIGGER_INSN,))},
        )
        assert pset.productions[0].tagged
        assert 0 in pset.replacements

    def test_unknown_condition_rejected(self):
        with pytest.raises(LanguageError):
            parse_productions("P1: T.FOO == 3 -> R1\nR1:\n    T.INSN\n")

    def test_undefined_replacement_rejected(self):
        with pytest.raises(LanguageError):
            parse_productions("P1: T.OPCLASS == load -> R9\n")


class TestReplacements:
    def test_mfi_block(self):
        pset = parse_productions(MFI_SOURCE, symbols={"__mfi_error": 0x400100})
        spec = pset.replacement(pset.productions[0].seq_id)
        assert len(spec) == 4
        srl = spec.instrs[0]
        assert srl.opcode is Opcode.SRL
        assert srl.ra == TrigField("rs")
        assert srl.imm == Lit(26)
        assert srl.rc == Lit(dise_reg(1))
        bne = spec.instrs[2]
        assert bne.imm == AbsTarget(0x400100)
        assert spec.instrs[3].is_trigger_copy

    def test_both_patterns_share_replacement(self):
        pset = parse_productions(MFI_SOURCE, symbols={"__mfi_error": 0})
        ids = {p.seq_id for p in pset.productions}
        assert len(ids) == 1

    def test_local_labels_for_dise_branches(self):
        pset = parse_productions("""
P1: T.OPCLASS == store -> R1
R1:
    dbne  $dr1, .skip
    fault 9
.skip:
    T.INSN
""")
        spec = pset.replacement(pset.productions[0].seq_id)
        assert spec.instrs[0].imm == Lit(2)

    def test_undefined_local_label(self):
        with pytest.raises(LanguageError):
            parse_productions("""
P1: T.OPCLASS == store -> R1
R1:
    dbne $dr1, .ghost
    T.INSN
""")

    def test_unresolved_symbol_rejected(self):
        with pytest.raises(LanguageError):
            parse_productions("""
P1: T.OPCLASS == store -> R1
R1:
    bne $dr1, @nowhere
    T.INSN
""")

    def test_codeword_params_in_replacements(self):
        pset = parse_productions("""
P1: T.OP == res0 -> R5
R5:
    lda  T.P1, T.P2(T.P1)
    ldq  t4, 0(T.P1)
""")
        spec = pset.replacement(5)
        lda = spec.instrs[0]
        assert lda.ra == TrigField("p1")
        assert lda.imm == TrigField("p2")

    def test_instruction_outside_block_rejected(self):
        with pytest.raises(LanguageError):
            parse_productions("    srl T.RS, #26, $dr1\n")

    def test_redefined_block_rejected(self):
        with pytest.raises(LanguageError):
            parse_productions("""
P1: T.OPCLASS == load -> R1
R1:
    T.INSN
R1:
    T.INSN
""")

    def test_comments_ignored(self):
        pset = parse_productions("""
# a comment
P1: T.OPCLASS == load -> R1   ; trailing comment
R1:
    T.INSN   # whole trigger
""")
        assert len(pset) == 1


class TestPcScopedPatterns:
    def test_pc_range_conditions(self):
        pset = parse_productions("""
P1: T.OPCLASS == store && T.PC >= 0x400100 && T.PC < 0x400200 -> R1
R1:
    T.INSN
""")
        pattern = pset.productions[0].pattern
        assert pattern.pc_lo == 0x400100
        assert pattern.pc_hi == 0x400200

    def test_half_specified_range_rejected(self):
        with pytest.raises(LanguageError):
            parse_productions("""
P1: T.OPCLASS == store && T.PC >= 0x400100 -> R1
R1:
    T.INSN
""")
