"""Tests for dynamic code specialization (Section 3.2)."""

import pytest

from repro.acf.specialization import (
    DR_SCRATCH,
    SPECIALIZE_OPCODE,
    SpecializationError,
    Specializer,
    attach_specialization,
    plant_specializations,
    specialized_sequence,
)
from repro.isa.build import Imm, addq, bis, bne, halt, ldq, mulq, out, stq, subq
from repro.isa.opcodes import Opcode
from repro.program.builder import ProgramBuilder
from repro.sim.functional import Machine, run_program

from conftest import A0, A1, T0, T1, ZERO


def multiply_loop(invariant_value, iterations=4):
    """x = sum of i * invariant for i in 1..iterations (invariant in t1).

    The invariant is loaded from data — its value is genuinely unknown
    until runtime, which is the point of the exercise.
    """
    b = ProgramBuilder()
    b.alloc_data("inv", 1, init=[invariant_value])
    b.label("main")
    b.load_address(A1, "inv")
    b.emit(ldq(T1, 0, A1))             # the loop-invariant operand
    b.emit(bis(ZERO, Imm(iterations), T0))
    b.emit(bis(ZERO, ZERO, A0))
    b.label("preheader")
    b.label("loop")
    b.emit(mulq(T0, T1, 5))            # t4 = i * invariant  <- planted
    b.emit(addq(A0, 5, A0))
    b.emit(subq(T0, Imm(1), T0))
    b.emit(bne(T0, "loop"))
    b.emit(out(A0))
    b.emit(halt())
    b.set_entry("main")
    return b.build()


def run_specialized(invariant_value, iterations=4):
    image = multiply_loop(invariant_value, iterations)
    reference = run_program(image)

    installation, specializer = attach_specialization(image)
    machine = installation.make_machine()
    specializer.install(machine.controller)
    # Run to the loop preheader (3 + load_address's 2 instructions).
    preheader = installation.image.symbols["preheader"]
    while machine.idx != preheader:
        machine.step()
    specializer.bind_all(machine)
    result = machine.run()
    return reference, result, specializer


class TestSpecializedSequences:
    def test_zero(self):
        assert len(specialized_sequence(0)) == 1

    def test_one_is_a_move(self):
        spec = specialized_sequence(1)
        assert len(spec) == 1 and spec.instrs[0].opcode is Opcode.BIS

    def test_power_of_two_is_single_shift(self):
        spec = specialized_sequence(8)
        assert len(spec) == 1
        assert spec.instrs[0].opcode is Opcode.SLL
        assert spec.instrs[0].imm.value == 3

    def test_sum_of_powers_is_three_ops(self):
        spec = specialized_sequence(12)    # 8 + 4
        assert len(spec) == 3
        assert spec.instrs[2].opcode is Opcode.ADDQ

    def test_difference_of_powers(self):
        spec = specialized_sequence(7)     # 8 - 1
        assert len(spec) == 3
        assert spec.instrs[2].opcode is Opcode.SUBQ

    def test_general_fallback_keeps_multiply(self):
        spec = specialized_sequence(11)    # not 2^a +/- 2^b
        assert any(r.opcode is Opcode.MULQ for r in spec.instrs)

    def test_scratch_register_is_dedicated(self):
        spec = specialized_sequence(12)
        from repro.core.directives import Lit

        assert spec.instrs[0].rc == Lit(DR_SCRATCH)


class TestPlanting:
    def test_multiplies_replaced_by_codewords(self):
        image = multiply_loop(8)
        planted, sites = plant_specializations(image)
        assert len(sites) == 1
        cw = planted.instructions[sites[0].index]
        assert cw.opcode is SPECIALIZE_OPCODE
        assert cw.tag == 0

    def test_site_records_registers(self):
        image = multiply_loop(8)
        _, sites = plant_specializations(image)
        site = sites[0]
        assert site.variant_reg == 1     # t0
        assert site.invariant_reg == 2   # t1
        assert site.dest_reg == 5

    def test_non_multiply_site_rejected(self):
        image = multiply_loop(8)
        with pytest.raises(SpecializationError):
            plant_specializations(image, site_indexes=[0])


class TestEndToEnd:
    @pytest.mark.parametrize("value", [0, 1, 2, 8, 12, 7, 11, 100, 96])
    def test_specialized_result_matches_multiply(self, value):
        reference, result, _ = run_specialized(value)
        assert result.outputs == reference.outputs
        assert result.fault_code is None

    def test_power_of_two_eliminates_multiplies(self):
        reference, result, _ = run_specialized(16)
        ref_muls = sum(1 for o in reference.ops
                       if o.opcode is Opcode.MULQ)
        spec_muls = sum(1 for o in result.ops if o.opcode is Opcode.MULQ)
        assert ref_muls > 0 and spec_muls == 0
        shifts = sum(1 for o in result.ops if o.opcode is Opcode.SLL)
        assert shifts >= ref_muls

    def test_sum_of_powers_single_codeword_three_instructions(self):
        reference, result, _ = run_specialized(12)
        # "With DISE, this specialization is just as easy": no rewriting,
        # the codeword expands into the three-instruction form.
        expansions = [o for o in result.ops if o.expansion is not None]
        assert expansions and expansions[0].expansion[1] == 3

    def test_rebinding_changes_behavior(self):
        image = multiply_loop(8)
        installation, specializer = attach_specialization(image)
        machine = installation.make_machine()
        specializer.install(machine.controller)
        preheader = installation.image.symbols["preheader"]
        while machine.idx != preheader:
            machine.step()
        first = specializer.bind(machine, 0)
        assert first.instrs[0].opcode is Opcode.SLL
        # Pretend the invariant changed (a new loop instance): rebind.
        machine.write_reg(specializer.sites[0].invariant_reg, 12)
        second = specializer.bind(machine, 0)
        assert len(second) == 3
        assert specializer.bindings[0] == 12

    def test_unbound_codeword_fails_loudly(self):
        image = multiply_loop(8)
        installation, specializer = attach_specialization(image)
        machine = installation.make_machine()
        specializer.install(machine.controller)
        from repro.core.engine import ExpansionError

        with pytest.raises(ExpansionError):
            machine.run()   # codeword executes before any bind()

    def test_bind_unknown_tag(self):
        image = multiply_loop(8)
        installation, specializer = attach_specialization(image)
        machine = installation.make_machine()
        specializer.install(machine.controller)
        with pytest.raises(SpecializationError):
            specializer.bind(machine, 99)


class TestInstructionBasedInterface:
    """Section 2.3: the program itself invokes the controller via ``ctrl``."""

    def self_specializing_program(self, invariant_value, iterations=5):
        from repro.isa.build import ctrl

        b = ProgramBuilder()
        b.alloc_data("inv", 1, init=[invariant_value])
        b.label("main")
        b.load_address(A1, "inv")
        b.emit(ldq(T1, 0, A1))
        b.emit(bis(ZERO, Imm(iterations), T0))
        b.emit(bis(ZERO, ZERO, A0))
        # The application binds its own specialization site: tag 0 in a0.
        b.emit(bis(ZERO, ZERO, 16))
        b.emit(ctrl(16, 1))
        b.label("loop")
        b.emit(mulq(T0, T1, 5))
        b.emit(addq(A0, 5, A0))
        b.emit(subq(T0, Imm(1), T0))
        b.emit(bne(T0, "loop"))
        b.emit(out(A0))
        b.emit(halt())
        b.set_entry("main")
        return b.build()

    def test_full_protocol(self):
        for value in (8, 12, 11):
            image = self.self_specializing_program(value)
            installation, specializer = attach_specialization(image)
            machine = installation.make_machine()
            specializer.register_with(machine)
            result = machine.run()
            assert result.fault_code is None
            # result equals a plain multiply loop's result
            plain = run_program(self._plain_equivalent(value))
            assert result.outputs == plain.outputs

    def _plain_equivalent(self, value, iterations=5):
        b = ProgramBuilder()
        b.alloc_data("inv", 1, init=[value])
        b.label("main")
        b.load_address(A1, "inv")
        b.emit(ldq(T1, 0, A1))
        b.emit(bis(ZERO, Imm(iterations), T0))
        b.emit(bis(ZERO, ZERO, A0))
        b.label("loop")
        b.emit(mulq(T0, T1, 5))
        b.emit(addq(A0, 5, A0))
        b.emit(subq(T0, Imm(1), T0))
        b.emit(bne(T0, "loop"))
        b.emit(out(A0))
        b.emit(halt())
        b.set_entry("main")
        return b.build()

    def test_ctrl_without_handler_raises(self):
        from repro.sim.functional import ExecutionError

        image = self.self_specializing_program(8)
        with pytest.raises(ExecutionError):
            run_program(image)   # no handler registered

    def test_duplicate_handler_code_rejected(self):
        image = self.self_specializing_program(8)
        installation, specializer = attach_specialization(image)
        machine = installation.make_machine()
        specializer.register_with(machine)
        with pytest.raises(ValueError):
            machine.register_control_handler(1, lambda m: None)
