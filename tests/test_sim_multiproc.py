"""Tests for multiprogramming over one DISE core (Section 2.3)."""

import pytest

from repro.acf.mfi import MFI_FAULT_CODE, ensure_error_stub, mfi_production_set
from repro.acf.tracing import DR_CURSOR, attach_sat, read_trace_buffer
from repro.core.production import ProductionSet
from repro.sim.functional import run_program
from repro.sim.multiproc import Scheduler

from conftest import build_loop_program


class TestScheduling:
    def test_two_plain_processes_complete(self):
        scheduler = Scheduler()
        a = scheduler.spawn(build_loop_program(iterations=30))
        b = scheduler.spawn(build_loop_program(iterations=10))
        scheduler.run(quantum=17)
        assert a.halted and b.halted
        assert a.machine.outputs == run_program(
            build_loop_program(iterations=30)).outputs
        assert b.machine.outputs == run_program(
            build_loop_program(iterations=10)).outputs

    def test_interleaving_happens(self):
        scheduler = Scheduler()
        scheduler.spawn(build_loop_program(iterations=50))
        scheduler.spawn(build_loop_program(iterations=50))
        scheduler.run(quantum=10)
        assert scheduler.switches > 4

    def test_budget_enforced(self):
        scheduler = Scheduler()
        scheduler.spawn(build_loop_program(iterations=1000))
        with pytest.raises(RuntimeError):
            scheduler.run(quantum=10, max_total_steps=100)


class TestUserScopeIsolation:
    def test_private_acf_applies_only_to_owner(self):
        """Process A traces its stores; process B is ACF-free.  A's buffer
        sees only A's stores, and B never expands."""
        image_a = build_loop_program(iterations=8)
        image_b = build_loop_program(iterations=8)
        sat = attach_sat(image_a)

        scheduler = Scheduler()
        a = scheduler.spawn(image_a, production_sets=sat.production_sets,
                            init=sat.init_machine)
        b = scheduler.spawn(image_b)
        scheduler.run(quantum=13)

        expected = [
            o.mem_addr for o in run_program(image_a).ops if o.is_store
        ]
        result_a = a.machine.result()
        traced = read_trace_buffer(result_a, sat.buffer_base)
        assert traced == expected
        assert a.machine.expansions > 0
        assert b.machine.expansions == 0

    def test_dedicated_registers_saved_across_switches(self):
        """Two processes with private ACF state in the same dedicated
        register: the kernel's save/restore keeps them separate."""
        image_a = build_loop_program(iterations=20)
        image_b = build_loop_program(iterations=20)
        sat_a = attach_sat(image_a)
        sat_b = attach_sat(image_b)
        # Rename B's production set to avoid the same-name install clash.
        sat_b.production_sets[0].name = "sat-b"

        scheduler = Scheduler()
        a = scheduler.spawn(image_a, production_sets=sat_a.production_sets,
                            init=sat_a.init_machine)
        b = scheduler.spawn(image_b, production_sets=sat_b.production_sets,
                            init=sat_b.init_machine)
        scheduler.run(quantum=7)

        stores = sum(
            1 for o in run_program(image_a).ops if o.is_store
        )
        # Each process's cursor advanced independently from its own base.
        assert (a.machine.regs[DR_CURSOR] - sat_a.buffer_base) == 8 * stores
        assert (b.machine.regs[DR_CURSOR] - sat_b.buffer_base) == 8 * stores


class TestKernelScope:
    def test_kernel_mfi_applies_to_every_process(self):
        image = ensure_error_stub(build_loop_program(iterations=5))
        mfi = mfi_production_set(image, "dise3")

        from repro.acf.mfi import DR_CODE_SEG, DR_DATA_SEG, segment_ids

        data_seg, code_seg = segment_ids(image)

        def init(machine):
            machine.regs[DR_DATA_SEG] = data_seg
            machine.regs[DR_CODE_SEG] = code_seg

        scheduler = Scheduler()
        scheduler.install_kernel_acf(mfi)
        a = scheduler.spawn(image, init=init)
        b = scheduler.spawn(image, init=init)
        scheduler.run(quantum=9)
        assert a.machine.expansions > 0
        assert b.machine.expansions > 0
        assert a.machine.fault_code is None
        assert b.machine.fault_code is None

    def test_kernel_scope_required(self):
        scheduler = Scheduler()
        user_set = ProductionSet("x", scope="user")
        with pytest.raises(ValueError):
            scheduler.install_kernel_acf(user_set)


class TestQuantumBoundaryPreciseState:
    def test_switch_mid_expansion_resumes_correctly(self):
        """A quantum can expire between two replacement instructions; the
        PC:DISEPC pair carries across the switch (Section 2.2)."""
        image = build_loop_program(iterations=12)
        sat = attach_sat(image)
        reference = sat.run()

        scheduler = Scheduler()
        a = scheduler.spawn(image, production_sets=sat.production_sets,
                            init=sat.init_machine)
        scheduler.spawn(build_loop_program(iterations=12))
        # A prime quantum guarantees switches inside 4-instruction
        # expansions at some point.
        scheduler.run(quantum=3)
        assert a.machine.outputs == reference.outputs
        traced = read_trace_buffer(a.machine.result(), sat.buffer_base)
        expected = read_trace_buffer(reference, sat.buffer_base)
        assert traced == expected
