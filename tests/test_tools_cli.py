"""Tests for the command-line tools."""

import pytest

from repro.tools.cli import build_parser, main

ASM = """
main:
    bis zero, #3, t0
loop:
    subq t0, #1, t0
    bne t0, loop
    out t0
    halt
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(ASM)
    return str(path)


class TestAsmDisasm:
    def test_asm_writes_binary(self, source_file, tmp_path, capsys):
        out = str(tmp_path / "prog.bin")
        assert main(["asm", source_file, "-o", out]) == 0
        data = open(out, "rb").read()
        assert len(data) == 5 * 4

    def test_disasm_round_trip(self, source_file, tmp_path, capsys):
        out = str(tmp_path / "prog.bin")
        main(["asm", source_file, "-o", out])
        capsys.readouterr()
        assert main(["disasm", out]) == 0
        text = capsys.readouterr().out
        assert "bis zero, #3, t0" in text
        assert "halt" in text

    def test_disasm_benchmark(self, capsys):
        assert main(["disasm", "--benchmark", "mcf", "--scale", "0.1"]) == 0
        text = capsys.readouterr().out
        assert "main:" in text and "f_hot0" in text


class TestRun:
    def test_run_source(self, source_file, capsys):
        assert main(["run", source_file]) == 0
        text = capsys.readouterr().out
        assert "halted: True" in text
        assert "outputs: [0]" in text

    def test_run_with_timing(self, source_file, capsys):
        assert main(["run", source_file, "--timing"]) == 0
        assert "cycles:" in capsys.readouterr().out

    def test_run_benchmark_with_mfi(self, capsys):
        code = main(["run", "--benchmark", "mcf", "--scale", "0.1",
                     "--mfi", "dise3"])
        assert code == 0
        assert "expansions" in capsys.readouterr().out

    def test_run_without_program_errors(self):
        with pytest.raises(SystemExit):
            main(["run"])


class TestCompress:
    def test_compress_benchmark(self, capsys):
        assert main(["compress", "--benchmark", "mcf", "--scale", "0.1",
                     "--verify"]) == 0
        text = capsys.readouterr().out
        assert "identical" in text

    def test_unknown_variant(self):
        with pytest.raises(SystemExit):
            main(["compress", "--benchmark", "mcf", "--variant", "magic"])


class TestExperiment:
    def test_single_experiment(self, capsys):
        assert main(["experiment", "fig7_ratio", "--benchmarks", "mcf",
                     "--scale", "0.1", "--config"]) == 0
        text = capsys.readouterr().out
        assert "Simulated machine" in text
        assert "Figure 7 (top)" in text
        assert "mcf" in text

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestParser:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--benchmark", "mcf"])
        assert args.benchmark == "mcf"


class TestReport:
    def test_report_to_file(self, tmp_path, capsys):
        out = str(tmp_path / "report.md")
        assert main(["report", "-o", out, "--benchmarks", "mcf",
                     "--scale", "0.1", "--experiments", "fig7_ratio"]) == 0
        text = open(out).read()
        assert "# DISE reproduction" in text
        assert "| mcf |" in text

    def test_report_to_stdout(self, capsys):
        assert main(["report", "--benchmarks", "mcf", "--scale", "0.1",
                     "--experiments", "fig7_ratio"]) == 0
        assert "Figure 7 (top)" in capsys.readouterr().out


class TestJsonOutput:
    """``--json`` variants of the inspection subcommands (scripting)."""

    def test_fabric_status_json(self, capsys, monkeypatch):
        import json

        monkeypatch.delenv("REPRO_FABRIC_STORE", raising=False)
        assert main(["fabric", "status", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc == {"checkpoint": None, "store": None}

    def test_fabric_status_json_unreadable_checkpoint(self, tmp_path,
                                                      capsys):
        import json

        missing = str(tmp_path / "nope.ckpt")
        assert main(["fabric", "status", "--json",
                     "--checkpoint", missing]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["checkpoint"] == {"path": missing, "readable": False}

    def test_cache_stats_json(self, capsys):
        import json

        # conftest points REPRO_TRACE_CACHE at a temp dir, so it's on.
        assert main(["cache", "stats", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["enabled"] is True
        for kind in ("traces", "cycles", "quarantined"):
            assert "entries" in doc[kind]

    def test_cache_stats_json_disabled(self, capsys, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_TRACE_CACHE", "")
        assert main(["cache", "stats", "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["enabled"] is False


class TestServeParser:
    def test_serve_subcommand_parses(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "7337", "--pool", "4",
                                  "--retirements", "1000000",
                                  "--wall", "60", "--state-dir", "/tmp/x"])
        assert args.port == 7337 and args.pool == 4
        assert args.retirements == 1000000
        assert args.wall == 60.0 and args.state_dir == "/tmp/x"

    def test_run_digest_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--benchmark", "gzip", "--digest",
                                  "--projection", "app"])
        assert args.digest is True and args.projection == "app"
