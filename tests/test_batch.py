"""Batched cohort execution: equality with the scalar tiers, divergence
handling, campaign/harness wiring, and the ``REPRO_BATCH`` knob."""

import json

import pytest

from repro.acf.base import AcfInstallation
from repro.acf.mfi import attach_mfi, ensure_error_stub
from repro.errors import ExecutionTimeout
from repro.faults.campaign import (
    CampaignConfig,
    CampaignInterrupted,
    run_campaign,
)
from repro.harness.parallel import TraceTask, run_tasks
from repro.harness.trace_cache import serialize_trace
from repro.sim.batch import (
    DEFAULT_COHORT,
    BatchMachine,
    resolve_batch,
    run_cohort,
)
from repro.sim.config import MachineConfig
from repro.telemetry import registry as registry_mod
from repro.verify.observe import Observer
from repro.workloads import BENCHMARK_NAMES, get_profile
from repro.workloads.generator import generate_benchmark, reseed_data

from repro.harness.parallel import FUNCTIONAL_DISE

SCALE = 0.02
MAX_STEPS = 5_000_000


def _installation(name, scale=SCALE):
    image = generate_benchmark(get_profile(name), scale=scale)
    ensure_error_stub(image)
    return attach_mfi(image, "dise3")


def _machine(installation, record=False, observe=False):
    machine = installation.make_machine(
        FUNCTIONAL_DISE, record_trace=record, dispatch="translated"
    )
    obs = None
    if observe:
        obs = Observer("full")
        machine._install_observer(obs)
    return machine, obs


class TestResolveBatch:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "16")
        assert resolve_batch(4) == 4
        assert resolve_batch(0) == 0

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "6")
        assert resolve_batch() == 6

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert resolve_batch() == 0

    @pytest.mark.parametrize("raw", ["", "0", "off", "false", "no"])
    def test_off_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BATCH", raw)
        assert resolve_batch() == 0

    @pytest.mark.parametrize("raw", ["1", "on", "true", "yes"])
    def test_on_spellings_mean_default_width(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BATCH", raw)
        assert resolve_batch() == DEFAULT_COHORT

    def test_width_one_means_default(self):
        assert resolve_batch(1) == DEFAULT_COHORT

    def test_negative_disables(self):
        assert resolve_batch(-3) == 0

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "lots")
        with pytest.raises(ValueError):
            resolve_batch()


class TestCohortEquality:
    """Batched lanes are bit-identical to serial translated runs."""

    @pytest.mark.parametrize("bench", BENCHMARK_NAMES)
    def test_profile_equality(self, bench):
        installation = _installation(bench)

        serial = []
        for _ in range(2):
            machine, obs = _machine(installation, record=True, observe=True)
            result = machine.run(max_steps=MAX_STEPS)
            serial.append((machine, obs, result))

        cohort = BatchMachine()
        batched = []
        for _ in range(2):
            machine, obs = _machine(installation, record=True, observe=True)
            cohort.add_lane(machine, max_steps=MAX_STEPS)
            batched.append((machine, obs))
        cohort.run()
        results = [o.raise_or_result(MAX_STEPS) for o in cohort.outcomes()]

        for (sm, sobs, sres), (bm, bobs), bres in zip(serial, batched,
                                                      results):
            assert sm.halted == bm.halted
            assert sm.fault_code == bm.fault_code
            assert sm.outputs == bm.outputs
            assert sm.instructions == bm.instructions
            assert sm.app_instructions == bm.app_instructions
            assert sm.expansions == bm.expansions
            assert sm.regs == bm.regs
            assert sm.mem._words == bm.mem._words
            assert serialize_trace(sres) == serialize_trace(bres)
            assert sobs.count == bobs.count
            assert sobs.hexdigest() == bobs.hexdigest()

    def test_mixed_seed_cohort_drains_and_readmits(self):
        """Data-seed variants diverge, drain to scalar, and re-admit —
        and still match their serial references exactly."""
        installation = _installation("gzip", scale=0.05)
        profile = get_profile("gzip")
        seeds = (None, 1, 2, 3)

        def lane(seed):
            target = installation
            if seed is not None:
                target = AcfInstallation(
                    image=reseed_data(installation.image, profile, seed),
                    production_sets=installation.production_sets,
                    init_machine=installation.init_machine,
                    name=installation.name,
                )
            return _machine(target, observe=True)

        serial = []
        for seed in seeds:
            machine, obs = lane(seed)
            machine.run(max_steps=MAX_STEPS)
            serial.append((machine, obs))

        cohort = BatchMachine()
        batched = []
        for seed in seeds:
            machine, obs = lane(seed)
            cohort.add_lane(machine, max_steps=MAX_STEPS)
            batched.append((machine, obs))
        cohort.run()
        for outcome in cohort.outcomes():
            outcome.raise_or_result(MAX_STEPS)

        assert sum(cohort.stats["drains"].values()) > 0
        assert cohort.stats["readmitted"] > 0
        for (sm, sobs), (bm, bobs) in zip(serial, batched):
            assert (sm.halted, sm.fault_code) == (bm.halted, bm.fault_code)
            assert sm.outputs == bm.outputs
            assert sm.instructions == bm.instructions
            assert sobs.hexdigest() == bobs.hexdigest()

        occupancy = cohort.occupancy()
        assert occupancy["lanes"] == len(seeds)
        assert occupancy["done"] == len(seeds)
        assert occupancy["retired"] == sum(m.instructions
                                           for m, _ in batched)

    def test_run_cohort_helper(self):
        installation = _installation("mcf")
        reference, _ = _machine(installation)
        reference.run(max_steps=MAX_STEPS)
        machines = [_machine(installation)[0] for _ in range(3)]
        outcomes = run_cohort(machines, max_steps=MAX_STEPS)
        for outcome in outcomes:
            assert outcome.status == "halted"
            result = outcome.raise_or_result(MAX_STEPS)
            assert result.instructions == reference.instructions
            assert result.outputs == reference.outputs


class TestCheckpointRestore:
    def test_mid_cohort_stop_matches_serial_checkpoint(self):
        """A lane stopped at retirement count N checkpoints exactly the
        state a serial run interrupted at N would."""
        installation = _installation("gzip")
        probe, _ = _machine(installation)
        probe.run(max_steps=MAX_STEPS)
        half = probe.instructions // 2
        assert half > 0

        serial, _ = _machine(installation)
        with pytest.raises(ExecutionTimeout):
            serial.run(max_steps=half)
        assert serial.instructions == half

        cohort = BatchMachine()
        stopped, _ = _machine(installation)
        full, _ = _machine(installation)
        cohort.add_lane(stopped, max_steps=MAX_STEPS, stop_at=half)
        cohort.add_lane(full, max_steps=MAX_STEPS)
        cohort.run()
        by_status = {o.machine: o for o in cohort.outcomes()}
        assert by_status[stopped].status == "stopped"
        assert by_status[full].status == "halted"
        assert stopped.instructions == half
        assert stopped.checkpoint() == serial.checkpoint()

        # Restoring the mid-cohort checkpoint resumes to the same end
        # state as an uninterrupted run.
        resumed, _ = _machine(installation)
        resumed.restore(stopped.checkpoint())
        resumed.run(max_steps=MAX_STEPS)
        assert resumed.halted == probe.halted
        assert resumed.outputs == probe.outputs
        assert resumed.regs == probe.regs
        assert resumed.mem._words == probe.mem._words

    def test_timeout_is_precise(self):
        installation = _installation("bzip2")
        probe, _ = _machine(installation)
        probe.run(max_steps=MAX_STEPS)
        budget = probe.instructions // 3
        cohort = BatchMachine()
        machine, _ = _machine(installation)
        cohort.add_lane(machine, max_steps=budget)
        cohort.run()
        outcome = cohort.outcomes()[0]
        assert outcome.status == "timeout"
        assert machine.instructions == budget
        with pytest.raises(ExecutionTimeout) as err:
            outcome.raise_or_result(budget)
        assert err.value.steps == budget


class TestCampaignBatch:
    CONFIG = CampaignConfig(seed=9, faults=16, benchmarks=("bzip2", "gzip"),
                            scale=0.05, checkpoint_every=5)

    def test_batched_campaign_report_matches_serial(self):
        serial = run_campaign(self.CONFIG, batch=0)
        batched = run_campaign(self.CONFIG, batch=4)
        assert json.dumps(batched, sort_keys=True) == \
            json.dumps(serial, sort_keys=True)

    def test_interrupted_batched_campaign_resumes_identically(self, tmp_path):
        reference = run_campaign(self.CONFIG, batch=0)
        ckpt = str(tmp_path / "campaign.json")
        with pytest.raises(CampaignInterrupted):
            run_campaign(self.CONFIG, checkpoint_path=ckpt, stop_after=7,
                         batch=4)
        resumed = run_campaign(self.CONFIG, checkpoint_path=ckpt,
                               resume=True, batch=4)
        assert json.dumps(resumed, sort_keys=True) == \
            json.dumps(reference, sort_keys=True)


class TestHarnessCohort:
    def _plan(self):
        return [
            (TraceTask(bench="mcf", scale=0.2, kind="mfi", variant="dise3",
                       data_seed=seed), [MachineConfig()])
            for seed in (None, 1, 2)
        ]

    def test_cohort_results_match_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        serial = run_tasks(self._plan(), jobs=1)
        monkeypatch.setenv("REPRO_BATCH", "4")
        cohort = run_tasks(self._plan(), jobs=1)
        assert set(serial) == set(cohort)
        for task in serial:
            _, trace_s, cycles_s = serial[task]
            _, trace_b, cycles_b = cohort[task]
            assert serialize_trace(trace_s) == serialize_trace(trace_b)
            assert cycles_s == cycles_b

    def test_data_seed_is_part_of_the_suite_key(self):
        base = TraceTask("mcf", 1.0, "mfi", variant="dise3")
        seeded = TraceTask("mcf", 1.0, "mfi", variant="dise3", data_seed=4)
        assert base.suite_key() != seeded.suite_key()
        assert seeded.suite_key() == base.suite_key() + ("data", 4)


class TestGeneratorDataSeed:
    def test_reseed_is_deterministic_and_shares_stores(self):
        profile = get_profile("mcf")
        image = generate_benchmark(profile, scale=SCALE)
        one = reseed_data(image, profile, 7)
        two = reseed_data(image, profile, 7)
        other = reseed_data(image, profile, 8)
        assert one.data_words == two.data_words
        assert one.data_words != other.data_words
        assert one.data_words != image.data_words
        assert one.instructions is image.instructions
        assert one._translation_store is image._translation_store

    def test_generate_with_data_seed_matches_reseed(self):
        profile = get_profile("gzip")
        base = generate_benchmark(profile, scale=SCALE)
        direct = generate_benchmark(profile, scale=SCALE, data_seed=3)
        derived = reseed_data(base, profile, 3)
        assert direct.data_words == derived.data_words


class TestTelemetry:
    def test_counters_register_when_enabled(self):
        registry_mod.configure(True)
        registry_mod.get_registry().reset()
        try:
            installation = _installation("bzip2")
            cohort = BatchMachine()
            for _ in range(2):
                machine, _ = _machine(installation)
                cohort.add_lane(machine, max_steps=MAX_STEPS)
            cohort.run()
            snapshot = registry_mod.snapshot()
        finally:
            registry_mod.configure(None)
            registry_mod.get_registry().reset()
        drains = [name for name in snapshot
                  if name.startswith("sim.batch.drain.")]
        assert drains, snapshot.keys()

    def test_stats_collected_with_telemetry_off(self):
        installation = _installation("bzip2")
        cohort = BatchMachine()
        machine, _ = _machine(installation)
        cohort.add_lane(machine, max_steps=MAX_STEPS)
        cohort.run()
        assert cohort.stats["rounds"] > 0
        assert registry_mod.snapshot() == {}
