"""Unit tests for the program builder and layout."""

import pytest

from repro.isa.build import Imm, addq, bis, bne, br, bsr, halt, ldq, nop, ret
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.isa.opcodes import Opcode
from repro.program.builder import (
    BuildError,
    DEFAULT_DATA_BASE,
    DEFAULT_TEXT_BASE,
    ProgramBuilder,
    build_from_assembly,
    split_address,
)


class TestLayout:
    def test_addresses_sequential(self):
        b = ProgramBuilder()
        b.emit_many([nop(), nop(), halt()])
        image = b.build()
        assert image.addresses == [
            DEFAULT_TEXT_BASE + 4 * i for i in range(3)
        ]
        assert image.sizes == [INSTRUCTION_BYTES] * 3
        assert image.uniform_size()

    def test_branch_resolution_backward(self):
        b = ProgramBuilder()
        b.label("top")
        b.emit(nop())
        b.emit(bne(1, "top"))
        b.emit(halt())
        image = b.build()
        # bne at index 1, target index 0 -> displacement -2.
        assert image.instructions[1].imm == -2
        assert image.target_index[1] == 0

    def test_branch_resolution_forward(self):
        b = ProgramBuilder()
        b.emit(br("end"))
        b.emit(nop())
        b.label("end")
        b.emit(halt())
        image = b.build()
        assert image.instructions[0].imm == 1
        assert image.target_index[0] == 2

    def test_numeric_branch_gets_target_index(self):
        b = ProgramBuilder()
        b.emit(bne(1, 1))
        b.emit(nop())
        b.emit(halt())
        image = b.build()
        assert image.target_index[0] == 2

    def test_undefined_label(self):
        b = ProgramBuilder()
        b.emit(br("nowhere"))
        with pytest.raises(BuildError):
            b.build()

    def test_duplicate_label(self):
        b = ProgramBuilder()
        b.label("x")
        b.emit(nop())
        b.label("x")
        with pytest.raises(BuildError):
            b.build()

    def test_entry_selection(self):
        b = ProgramBuilder()
        b.emit(nop())
        b.label("main")
        b.emit(halt())
        image = b.build()
        assert image.entry_index == 1

    def test_explicit_entry(self):
        b = ProgramBuilder()
        b.label("a")
        b.emit(nop())
        b.label("b")
        b.emit(halt())
        b.set_entry("b")
        assert b.build().entry_index == 1


class TestData:
    def test_alloc_and_init(self):
        b = ProgramBuilder()
        addr = b.alloc_data("arr", 4, init=[1, 2])
        b.emit(halt())
        image = b.build()
        assert addr == DEFAULT_DATA_BASE
        assert image.data_words[addr] == 1
        assert image.data_words[addr + 8] == 2
        assert image.data_size == 32

    def test_alloc_sequential(self):
        b = ProgramBuilder()
        a = b.alloc_data("a", 2)
        c = b.alloc_data("c", 2)
        assert c == a + 16

    def test_duplicate_data_symbol(self):
        b = ProgramBuilder()
        b.alloc_data("a", 1)
        with pytest.raises(BuildError):
            b.alloc_data("a", 1)

    def test_oversized_initialiser(self):
        b = ProgramBuilder()
        with pytest.raises(BuildError):
            b.alloc_data("a", 1, init=[1, 2])


class TestLoadAddress:
    def test_split_address_reassembles(self):
        for addr in (0, 0x400000, 0x0400_0000, 0x12345678, 0x0400_8000):
            high, low = split_address(addr)
            assert ((high << 16) + low) & 0xFFFFFFFF == addr

    def test_load_data_address(self):
        b = ProgramBuilder()
        addr = b.alloc_data("arr", 1)
        b.label("main")
        b.load_address(5, "arr")
        b.emit(halt())
        image = b.build()
        assert image.instructions[0].opcode is Opcode.LDAH
        assert image.instructions[1].opcode is Opcode.LDA
        high, low = split_address(addr)
        assert image.instructions[0].imm == high
        assert image.instructions[1].imm == low
        # Data symbols don't move; no relocation is recorded.
        assert image.load_addresses == {}

    def test_load_text_address_recorded(self):
        b = ProgramBuilder()
        b.label("main")
        b.load_address(27, "target")
        b.emit(halt())
        b.label("target")
        b.emit(ret(26))
        image = b.build()
        assert image.load_addresses == {0: "target"}
        high, low = split_address(image.symbol_address("target"))
        assert image.instructions[0].imm == high
        assert image.instructions[1].imm == low

    def test_undefined_symbol(self):
        b = ProgramBuilder()
        b.load_address(5, "ghost")
        with pytest.raises(BuildError):
            b.build()


class TestFromAssembly:
    def test_build_from_assembly(self):
        image = build_from_assembly("""
        main:
            bis zero, #2, t0
        loop:
            subq t0, #1, t0
            bne t0, loop
            halt
        """)
        assert image.entry_index == 0
        assert image.symbols == {"main": 0, "loop": 1}
        assert image.target_index[2] == 1

    def test_fresh_labels_unique(self):
        b = ProgramBuilder()
        assert b.fresh_label() != b.fresh_label()
