"""PT virtualization under pressure: more active patterns than PT entries.

Section 2.3: the PT is a physical cache over a larger virtual pattern
namespace; a fetched instance of an opcode whose active and resident
pattern counts differ triggers a miss and a per-opcode fill.  With more
active patterns than entries, steady-state PT misses occur and the timing
model charges for them.
"""

import pytest

from repro.core.config import DiseConfig
from repro.core.controller import DiseController
from repro.core.pattern import PatternSpec
from repro.core.production import ProductionSet
from repro.core.replacement import identity_replacement
from repro.isa.opcodes import OpClass, Opcode
from repro.sim.config import MachineConfig
from repro.sim.cycle import simulate_trace
from repro.sim.functional import Machine

from conftest import build_loop_program


def register_split_productions(opclass: OpClass, opcode: Opcode,
                               count: int, name: str) -> ProductionSet:
    """``count`` identity productions on one opcode, split by T.RS value —
    an easy way to create a large virtual pattern set."""
    pset = ProductionSet(name)
    for reg in range(count):
        pset.define(
            PatternSpec(opcode=opcode, regs={"rs": reg}),
            identity_replacement(),
            name=f"{name}-{reg}",
        )
    # A catch-all so every instance of the opcode matches something.
    pset.define(PatternSpec(opcode=opcode), identity_replacement(),
                name=f"{name}-any")
    return pset


def big_pattern_controller(pt_entries=8):
    controller = DiseController(DiseConfig(pt_entries=pt_entries))
    # 3 opcodes x (12+1) patterns = 39 active patterns, far over 8 entries.
    controller.install(register_split_productions(
        OpClass.LOAD, Opcode.LDQ, 12, "ldq"))
    controller.install(register_split_productions(
        OpClass.STORE, Opcode.STQ, 12, "stq"))
    controller.install(register_split_productions(
        OpClass.INT_ARITH, Opcode.ADDQ, 12, "addq"))
    return controller


class TestPtPressure:
    def test_steady_state_pt_misses(self):
        image = build_loop_program(iterations=20)
        machine = Machine(image, controller=big_pattern_controller())
        result = machine.run()
        # Interleaved ldq/addq/stq fetches keep evicting each other's
        # pattern groups from the 8-entry PT.
        assert machine.pt_misses > 3
        assert result.halted

    def test_large_pt_eliminates_misses(self):
        image = build_loop_program(iterations=20)
        machine = Machine(image, controller=big_pattern_controller(
            pt_entries=64))
        machine.run()
        # Only the cold fills remain (one per opcode group).
        assert machine.pt_misses <= 3

    def test_functional_behaviour_pt_size_independent(self):
        image = build_loop_program(iterations=10)
        outputs = []
        for entries in (4, 8, 64):
            machine = Machine(image,
                              controller=big_pattern_controller(entries))
            outputs.append(machine.run().outputs)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_timing_charges_pt_misses(self):
        image = build_loop_program(iterations=20)
        small = Machine(image, controller=big_pattern_controller(8))
        trace_small = small.run()
        large = Machine(image, controller=big_pattern_controller(64))
        trace_large = large.run()

        config = MachineConfig()
        slow = simulate_trace(trace_small, config, warm_start=True)
        fast = simulate_trace(trace_large, config, warm_start=True)
        assert slow.pt_miss_stalls > fast.pt_miss_stalls
        assert slow.cycles > fast.cycles

    def test_most_specific_still_wins_under_pressure(self):
        """PT misses never change which production matches."""
        image = build_loop_program(iterations=5)
        controller = big_pattern_controller(4)
        machine = Machine(image, controller=controller)
        result = machine.run()
        # All matched productions are identities: stream length unchanged
        # except that every matching instruction became a 1-instr expansion.
        assert result.instructions == result.app_instructions
