"""Unit and property tests for pattern specifications."""

import pytest
from hypothesis import given, strategies as st

from repro.core.pattern import (
    PatternSpec,
    match_indirect_jumps,
    match_loads,
    match_opcode,
    match_stores,
)
from repro.isa.build import Imm, addq, beq, bne, jsr, lda, ldq, ret, stq
from repro.isa.opcodes import OpClass, Opcode


class TestConstruction:
    def test_requires_opcode_or_class(self):
        with pytest.raises(ValueError):
            PatternSpec()

    def test_opcode_class_consistency(self):
        with pytest.raises(ValueError):
            PatternSpec(opcode=Opcode.LDQ, opclass=OpClass.STORE)
        PatternSpec(opcode=Opcode.LDQ, opclass=OpClass.LOAD)  # consistent

    def test_unknown_register_role(self):
        with pytest.raises(ValueError):
            PatternSpec(opclass=OpClass.LOAD, regs={"rx": 5})

    def test_bad_imm_sign(self):
        with pytest.raises(ValueError):
            PatternSpec(opclass=OpClass.LOAD, imm_sign=2)

    def test_hashable_and_equal(self):
        a = PatternSpec(opclass=OpClass.LOAD, regs={"rs": 30})
        b = PatternSpec(opclass=OpClass.LOAD, regs={"rs": 30})
        assert a == b and hash(a) == hash(b)
        assert a != PatternSpec(opclass=OpClass.LOAD)


class TestMatching:
    def test_class_match(self):
        assert match_loads().matches(ldq(1, 0, 2))
        assert not match_loads().matches(stq(1, 0, 2))
        assert match_stores().matches(stq(1, 0, 2))
        assert match_indirect_jumps().matches(ret(26))
        assert match_indirect_jumps().matches(jsr(26, 27))

    def test_lda_is_not_a_load(self):
        assert not match_loads().matches(lda(1, 0, 2))

    def test_opcode_match(self):
        assert match_opcode(Opcode.LDQ).matches(ldq(1, 0, 2))
        assert not match_opcode(Opcode.LDQ).matches(stq(1, 0, 2))

    def test_register_constraint(self):
        sp_loads = PatternSpec(opclass=OpClass.LOAD, regs={"rs": 30})
        assert sp_loads.matches(ldq(1, 0, 30))
        assert not sp_loads.matches(ldq(1, 0, 2))

    def test_imm_constraint(self):
        pattern = PatternSpec(opclass=OpClass.LOAD, imm=8)
        assert pattern.matches(ldq(1, 8, 2))
        assert not pattern.matches(ldq(1, 16, 2))

    def test_negative_offset_branches(self):
        # "conditional branches with negative offsets" (Section 2.1).
        pattern = PatternSpec(opclass=OpClass.COND_BRANCH, imm_sign=-1)
        assert pattern.matches(bne(1, -4))
        assert not pattern.matches(bne(1, 4))
        positive = PatternSpec(opclass=OpClass.COND_BRANCH, imm_sign=1)
        assert positive.matches(bne(1, 0))

    def test_could_match_opcode(self):
        assert match_loads().could_match_opcode(Opcode.LDQ)
        assert match_loads().could_match_opcode(Opcode.LDL)
        assert not match_loads().could_match_opcode(Opcode.STQ)
        assert match_opcode(Opcode.BNE).could_match_opcode(Opcode.BNE)
        assert not match_opcode(Opcode.BNE).could_match_opcode(Opcode.BEQ)


class TestSpecificity:
    def test_opcode_more_specific_than_class(self):
        assert (match_opcode(Opcode.LDQ).specificity
                > match_loads().specificity)

    def test_register_constraints_add_specificity(self):
        general = match_loads()
        with_reg = PatternSpec(opclass=OpClass.LOAD, regs={"rs": 30})
        assert with_reg.specificity > general.specificity

    def test_imm_more_specific_than_sign(self):
        by_value = PatternSpec(opclass=OpClass.LOAD, imm=0)
        by_sign = PatternSpec(opclass=OpClass.LOAD, imm_sign=1)
        assert by_value.specificity > by_sign.specificity

    @given(st.sampled_from([Opcode.LDQ, Opcode.LDL]),
           st.integers(0, 31), st.integers(0, 31),
           st.integers(-100, 100))
    def test_matching_instr_always_matches_its_own_opcode_pattern(
            self, op, ra, rb, imm):
        from repro.isa.instruction import Instruction

        instr = Instruction(op, ra=ra, rb=rb, imm=imm)
        assert match_opcode(op).matches(instr)
        assert match_loads().matches(instr)

    def test_render(self):
        pattern = PatternSpec(opclass=OpClass.STORE)
        assert pattern.render() == "T.OPCLASS == store"
        pattern = PatternSpec(opcode=Opcode.LDQ, regs={"rs": 30})
        assert "T.OP == ldq" in pattern.render()
        assert "T.RS == sp" in pattern.render()
