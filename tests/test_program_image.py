"""Unit tests for ProgramImage queries."""

import pytest

from repro.isa.build import halt, nop
from repro.isa.instruction import INSTRUCTION_BYTES
from repro.program.builder import ProgramBuilder
from repro.program.image import ProgramImage


def tiny_image():
    b = ProgramBuilder()
    b.label("main")
    b.emit(nop())
    b.label("end")
    b.emit(halt())
    return b.build()


class TestAddressing:
    def test_index_of_addr(self):
        image = tiny_image()
        for index, addr in enumerate(image.addresses):
            assert image.index_at(addr) == index

    def test_index_at_bad_address(self):
        with pytest.raises(KeyError):
            tiny_image().index_at(0xDEAD)

    def test_symbol_address(self):
        image = tiny_image()
        assert image.symbol_address("end") == image.addresses[1]

    def test_symbol_table_by_address(self):
        image = tiny_image()
        table = image.symbol_table_by_address()
        assert table[image.addresses[0]] == "main"

    def test_entry_address(self):
        image = tiny_image()
        assert image.entry_address == image.addresses[image.entry_index]


class TestMeasurement:
    def test_text_size(self):
        image = tiny_image()
        assert image.text_size == 2 * INSTRUCTION_BYTES
        assert image.instruction_count == 2

    def test_count_matching(self):
        image = tiny_image()
        assert image.count_matching(lambda i: i.opcode.name == "HALT") == 1

    def test_mixed_sizes(self):
        image = ProgramImage(
            instructions=[nop(), halt()],
            addresses=[0, 2],
            sizes=[2, 4],
            target_index=[None, None],
            symbols={},
        )
        assert not image.uniform_size()
        assert image.text_size == 6

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ProgramImage(
                instructions=[nop()],
                addresses=[0, 4],
                sizes=[4],
                target_index=[None],
                symbols={},
            )
