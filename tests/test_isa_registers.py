"""Unit tests for the register model."""

import pytest

from repro.isa.registers import (
    DISE_REG_BASE,
    NUM_DISE_REGS,
    NUM_USER_REGS,
    ZERO_REG,
    dise_reg,
    is_dise_reg,
    is_user_reg,
    is_zero_reg,
    parse_reg,
    reg_name,
)


class TestRegisterSpaces:
    def test_user_register_range(self):
        assert is_user_reg(0)
        assert is_user_reg(NUM_USER_REGS - 1)
        assert not is_user_reg(NUM_USER_REGS)
        assert not is_user_reg(-1)

    def test_dise_register_range(self):
        assert is_dise_reg(DISE_REG_BASE)
        assert is_dise_reg(DISE_REG_BASE + NUM_DISE_REGS - 1)
        assert not is_dise_reg(DISE_REG_BASE + NUM_DISE_REGS)
        assert not is_dise_reg(NUM_USER_REGS - 1)

    def test_spaces_disjoint(self):
        for reg in range(DISE_REG_BASE + NUM_DISE_REGS):
            assert is_user_reg(reg) != is_dise_reg(reg)

    def test_zero_register(self):
        assert is_zero_reg(ZERO_REG)
        assert ZERO_REG == 31

    def test_dise_reg_constructor(self):
        assert dise_reg(0) == DISE_REG_BASE
        assert dise_reg(7) == DISE_REG_BASE + 7

    def test_dise_reg_out_of_range(self):
        with pytest.raises(ValueError):
            dise_reg(8)
        with pytest.raises(ValueError):
            dise_reg(-1)


class TestParsing:
    @pytest.mark.parametrize("text,expected", [
        ("sp", 30), ("$sp", 30), ("ra", 26), ("zero", 31), ("v0", 0),
        ("a0", 16), ("t11", 25), ("s6", 15), ("gp", 29), ("at", 28),
        ("r0", 0), ("r31", 31), ("$7", 7), ("pv", 27), ("t12", 27),
        ("fp", 15),
    ])
    def test_parse_aliases(self, text, expected):
        assert parse_reg(text) == expected

    def test_parse_dise_registers(self):
        for index in range(NUM_DISE_REGS):
            assert parse_reg(f"$dr{index}") == dise_reg(index)
            assert parse_reg(f"dr{index}") == dise_reg(index)

    def test_parse_case_insensitive(self):
        assert parse_reg("SP") == 30
        assert parse_reg("$DR3") == dise_reg(3)

    @pytest.mark.parametrize("bad", ["", "r32", "x5", "$dr8", "reg", "-1"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_reg(bad)


class TestRendering:
    def test_round_trip_all_registers(self):
        for reg in list(range(NUM_USER_REGS)) + [
            dise_reg(i) for i in range(NUM_DISE_REGS)
        ]:
            assert parse_reg(reg_name(reg)) == reg

    def test_alias_preference(self):
        assert reg_name(30) == "sp"
        assert reg_name(31) == "zero"
        assert reg_name(dise_reg(2)) == "$dr2"

    def test_numeric_rendering(self):
        assert reg_name(5, prefer_alias=False) == "r5"

    def test_render_rejects_bad_id(self):
        with pytest.raises(ValueError):
            reg_name(99)
