"""Unit tests for opcode definitions and classification."""

import pytest

from repro.isa.opcodes import (
    Format,
    OPCODE_BY_CODE,
    OPCODE_BY_MNEMONIC,
    OpClass,
    Opcode,
    RESERVED_OPCODES,
    UNSAFE_OPCLASSES,
    parse_opcode,
)


class TestEncodingSpace:
    def test_codes_unique(self):
        codes = [op.code for op in Opcode]
        assert len(codes) == len(set(codes))

    def test_codes_fit_six_bits(self):
        for op in Opcode:
            assert 0 <= op.code < 64

    def test_lookup_by_code(self):
        for op in Opcode:
            assert OPCODE_BY_CODE[op.code] is op


class TestClassification:
    def test_loads(self):
        assert Opcode.LDQ.is_load and Opcode.LDL.is_load
        assert not Opcode.LDA.is_load, "lda computes an address, no access"

    def test_stores(self):
        assert Opcode.STQ.is_store and Opcode.STL.is_store

    def test_memory_classes(self):
        assert Opcode.LDQ.is_memory and Opcode.STQ.is_memory
        assert not Opcode.ADDQ.is_memory

    def test_branch_classification(self):
        assert Opcode.BEQ.is_cond_branch
        assert Opcode.BR.is_branch and not Opcode.BR.is_cond_branch
        assert Opcode.JSR.is_branch
        assert Opcode.JSR.opclass is OpClass.INDIRECT_JUMP

    def test_dise_branches_not_app_branches(self):
        for op in (Opcode.DBEQ, Opcode.DBNE, Opcode.DBR):
            assert op.is_dise_branch
            assert not op.is_branch, "DISE branches move the DISEPC only"

    def test_reserved_opcodes(self):
        assert len(RESERVED_OPCODES) == 4
        for op in RESERVED_OPCODES:
            assert op.is_reserved
            assert op.format is Format.CODEWORD

    def test_unsafe_opclasses_match_paper(self):
        # Section 3.1: loads, stores, indirect jumps.
        assert set(UNSAFE_OPCLASSES) == {
            OpClass.LOAD, OpClass.STORE, OpClass.INDIRECT_JUMP
        }

    def test_latencies(self):
        assert Opcode.MULQ.latency > Opcode.ADDQ.latency
        assert Opcode.LDQ.latency >= 2


class TestMnemonics:
    def test_parse_round_trip(self):
        for op in Opcode:
            assert parse_opcode(op.mnemonic) is op

    def test_aliases(self):
        assert parse_opcode("or") is Opcode.BIS
        assert parse_opcode("mov") is Opcode.BIS

    def test_case_insensitive(self):
        assert parse_opcode("LDQ") is Opcode.LDQ
        assert parse_opcode(" AddQ ") is Opcode.ADDQ

    def test_unknown_mnemonic(self):
        with pytest.raises(ValueError):
            parse_opcode("frobnicate")

    def test_mnemonic_table_complete(self):
        for op in Opcode:
            assert OPCODE_BY_MNEMONIC[op.mnemonic] is op
