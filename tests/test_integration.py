"""End-to-end integration scenarios crossing every subsystem."""

import pytest

from repro.acf.compression import DISE_OPTIONS, compress_image
from repro.acf.mfi import MFI_FAULT_CODE, attach_mfi, rewrite_mfi
from repro.acf.monitor import attach_monitor
from repro.acf.tracing import attach_sat, read_trace_buffer
from repro.core.controller import DiseController
from repro.core.config import DiseConfig
from repro.isa.opcodes import Opcode
from repro.sim.config import MachineConfig
from repro.sim.cycle import simulate_trace
from repro.sim.functional import Machine, run_program
from repro.workloads import generate_by_name

from conftest import build_loop_program


@pytest.fixture(scope="module")
def bench():
    return generate_by_name("twolf", scale=0.25)


@pytest.fixture(scope="module")
def bench_plain(bench):
    return run_program(bench, record_trace=False)


class TestFullBenchmarkPipelines:
    def test_mfi_then_timing(self, bench, bench_plain):
        """Functional MFI run feeds the timing model; DISE3 beats the
        rewriting baseline end to end."""
        base = simulate_trace(run_program(bench), MachineConfig(),
                              warm_start=True)
        d3 = simulate_trace(attach_mfi(bench, "dise3").run(),
                            MachineConfig(), warm_start=True)
        rw = simulate_trace(rewrite_mfi(bench).run(),
                            MachineConfig(), warm_start=True)
        assert base.cycles < d3.cycles < rw.cycles

    def test_compression_then_timing(self, bench, bench_plain):
        result = compress_image(bench, DISE_OPTIONS)
        trace = result.installation().run()
        timing = simulate_trace(trace, MachineConfig(), warm_start=True)
        assert timing.expansions == trace.expansions > 0

    def test_trace_reuse_across_configs(self, bench):
        """One functional trace replayed under different machines gives
        deterministic, distinct results — the harness's core factoring."""
        trace = run_program(bench)
        small = simulate_trace(trace, MachineConfig().with_il1_size(8 * 1024),
                               warm_start=True)
        large = simulate_trace(trace, MachineConfig().with_il1_size(None),
                               warm_start=True)
        again = simulate_trace(trace, MachineConfig().with_il1_size(8 * 1024),
                               warm_start=True)
        assert small.cycles == again.cycles
        assert large.cycles <= small.cycles


class TestMultipleAcfsOneController:
    def test_tracing_and_monitor_together(self):
        """Two transparent ACFs active simultaneously in one controller."""
        image = build_loop_program(iterations=4)
        plain = run_program(image)

        sat = attach_sat(image)
        monitor_sets = attach_monitor(image, budgeted=[Opcode.STQ],
                                      budget=10 ** 6)
        controller = DiseController()
        for pset in sat.production_sets + monitor_sets.production_sets:
            controller.install(pset)
        machine = Machine(image, controller=controller)
        sat.init_machine(machine)
        monitor_sets.init_machine(machine)
        result = machine.run()

        assert result.outputs == plain.outputs
        traced = read_trace_buffer(result, sat.buffer_base)
        # The budget-counting production wins on stores only if more
        # specific; both are opclass/opcode level — the opcode pattern
        # (STQ) is more specific than SAT's store opclass pattern, so
        # stores are counted, not traced.
        assert result.fault_code is None

    def test_context_switch_between_processes(self):
        """User-scope productions follow their process across switches."""
        image = build_loop_program(iterations=3)
        sat = attach_sat(image)
        controller = DiseController()
        controller.context_switch(1)
        controller.install(sat.production_sets[0], owner_pid=1)

        machine = Machine(image, controller=controller)
        sat.init_machine(machine)
        # Run a few instructions as process 1, switch away and back.
        for _ in range(5):
            machine.step()
        saved = controller.save_state.__self__  # controller itself
        controller.context_switch(2)
        assert controller.engine.match(image.instructions[0]) is None or \
            controller.active_names() == ()
        controller.context_switch(1)
        result = machine.run()
        assert result.halted


class TestDiseConfigEndToEnd:
    def test_tiny_rt_still_correct_just_slower(self, bench, bench_plain):
        """Functional correctness is RT-size independent; only timing
        changes (virtualization, Section 2.3)."""
        installation = attach_mfi(bench, "dise3")
        tiny = installation.run(
            dise_config=DiseConfig(rt_entries=8, rt_assoc=1)
        )
        assert tiny.outputs == bench_plain.outputs

        trace = installation.run()
        fast = simulate_trace(
            trace,
            MachineConfig(dise=DiseConfig(rt_perfect=True)),
            warm_start=True,
        )
        slow = simulate_trace(
            trace,
            MachineConfig(dise=DiseConfig(rt_entries=8, rt_assoc=1)),
            warm_start=True,
        )
        assert slow.cycles > fast.cycles
        assert slow.rt_miss_stalls > 0

    def test_mfi_on_compressed_image_via_nesting_catches_faults(self):
        """The composed dise+dise pipeline still enforces MFI on a program
        whose wild store got compressed into a dictionary entry."""
        from repro.acf.composition import compose_dise_dise
        from repro.isa.build import Imm, bis, halt, ldq, out, sll, stq
        from repro.isa.registers import parse_reg
        from repro.program import ProgramBuilder

        A0, A1, T0 = (parse_reg(r) for r in ("a0", "a1", "t0"))
        ZERO = parse_reg("zero")
        b = ProgramBuilder()
        b.alloc_data("buf", 8, init=[1] * 8)
        b.label("main")
        b.load_address(A1, "buf")
        for off in (0, 8, 16, 24, 0, 8, 16, 24):
            b.emit(ldq(A0, off, A1))
            b.emit(stq(A0, off, A1))
        b.emit(bis(ZERO, Imm(9), T0))
        b.emit(sll(T0, Imm(26), T0))
        b.emit(stq(A0, 16, T0))
        b.emit(out(A0))
        b.emit(halt())
        image = b.build()

        result, installation = compose_dise_dise(image)
        run = installation.run()
        assert run.fault_code == MFI_FAULT_CODE
        assert run.final_memory.read((9 << 26) + 16) == 0
