"""Unit and property tests for the cache model."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.cache import Cache, CacheConfig, PerfectCache
from repro.sim.memory import Memory


def make_cache(size=1024, assoc=2, line=64):
    return Cache(CacheConfig(size_bytes=size, assoc=assoc, line_bytes=line))


class TestGeometry:
    def test_derived_counts(self):
        config = CacheConfig(size_bytes=32 * 1024, assoc=2, line_bytes=64)
        assert config.num_lines == 512
        assert config.num_sets == 256

    @pytest.mark.parametrize("kwargs", [
        dict(size_bytes=0, assoc=1),
        dict(size_bytes=100, assoc=1, line_bytes=64),   # not a multiple
        dict(size_bytes=128, assoc=3, line_bytes=64),   # lines % assoc
        dict(size_bytes=64, assoc=1, line_bytes=0),
    ])
    def test_bad_geometry(self, kwargs):
        with pytest.raises(ValueError):
            CacheConfig(**kwargs)


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.access(0x1004) is True, "same line"
        assert cache.misses == 1

    def test_line_granularity(self):
        cache = make_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x103F) is True
        assert cache.access(0x1040) is False

    def test_conflict_eviction_direct_mapped(self):
        cache = make_cache(size=128, assoc=1, line=64)   # 2 sets
        cache.access(0x0)
        cache.access(0x80)    # same set, evicts 0x0
        assert cache.access(0x0) is False

    def test_associativity_avoids_conflict(self):
        cache = make_cache(size=256, assoc=2, line=64)   # 2 sets, 2-way
        cache.access(0x0)
        cache.access(0x100)   # same set, second way
        assert cache.access(0x0) is True

    def test_lru_replacement(self):
        cache = make_cache(size=128, assoc=2, line=64)   # 1 set, 2-way
        cache.access(0x0)
        cache.access(0x40)
        cache.access(0x0)     # touch 0x0: 0x40 becomes LRU
        cache.access(0x80)    # evicts 0x40
        assert cache.access(0x0) is True
        assert cache.access(0x40) is False

    def test_probe_does_not_mutate(self):
        cache = make_cache()
        cache.access(0x1000)
        before = cache.accesses
        assert cache.probe(0x1000) is True
        assert cache.probe(0x2000) is False
        assert cache.accesses == before

    def test_invalidate(self):
        cache = make_cache()
        cache.access(0x1000)
        cache.invalidate()
        assert cache.access(0x1000) is False

    def test_stats(self):
        cache = make_cache()
        cache.access(0x0)
        cache.access(0x0)
        assert cache.hits == 1
        assert cache.miss_rate == 0.5


class TestPerfectCache:
    def test_always_hits(self):
        cache = PerfectCache()
        assert cache.access(0xDEADBEEF) is True
        assert cache.miss_rate == 0.0
        assert cache.hits == cache.accesses == 1


class TestCapacityMonotonicity:
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=400))
    def test_whole_trace_fits_big_cache(self, addrs):
        """A cache larger than the touched footprint sees only cold misses."""
        big = make_cache(size=1 << 21, assoc=4)
        lines = {a >> 6 for a in addrs}
        for addr in addrs:
            big.access(addr)
        assert big.misses == len(lines)

    @given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=300))
    def test_fully_associative_dominates_capacity(self, addrs):
        """At equal capacity, more associativity never hurts an LRU cache
        on this reference stream replayed twice."""
        stream = addrs + addrs
        low = make_cache(size=1024, assoc=1)
        high = make_cache(size=1024, assoc=16)
        for addr in stream:
            low.access(addr)
        for addr in stream:
            high.access(addr)
        assert high.misses <= low.misses * 2  # LRU anomaly guard, loose bound


class TestMemory:
    def test_zero_default(self):
        assert Memory().read(0x1234) == 0

    def test_word_aligned_addressing(self):
        mem = Memory()
        mem.write(0x1003, 7)
        assert mem.read(0x1000) == 7

    def test_64_bit_wrap(self):
        mem = Memory()
        mem.write(0, 1 << 70)
        assert mem.read(0) == 0

    def test_snapshot_restore(self):
        mem = Memory({0: 1})
        snap = mem.snapshot()
        mem.write(0, 2)
        mem.restore(snap)
        assert mem.read(0) == 1

    def test_equality_ignores_explicit_zeros(self):
        a = Memory({0: 0, 8: 5})
        b = Memory({8: 5})
        assert a == b
