"""Equality and memo tests for the two timing-replay engines.

The outcome engine (``REPRO_CYCLE=outcome``, the default) must be
bit-identical to the reference scalar loop for every ``CycleResult``
field, every retire-observer callback, and every published telemetry
counter — across the full 12-profile config grid the figures sweep
(placements, widths, RT geometries, perfect/real caches, warm/cold).
The memo tests pin the accelerator state's lifecycle: component columns
are reused across config sweeps, never serialized, and the reference
engine's warm-state memo evicts in true LRU order.
"""

import dataclasses

import pytest

from repro.core.config import DiseConfig
from repro.harness.trace_cache import deserialize_trace, serialize_trace
from repro.sim.config import KB, MachineConfig, dl1_config, il1_config
from repro.sim.cycle import (
    CycleSimulator,
    resolve_cycle_engine,
    simulate_trace,
)
from repro.telemetry import registry as _telemetry
from repro.workloads.generator import generate_benchmark
from repro.workloads.specint import BENCHMARK_NAMES, get_profile

SCALE = 0.1


@pytest.fixture(scope="module")
def traces():
    """One MFI trace per SPECint profile, scaled down for test runtime."""
    from repro.acf.mfi import attach_mfi

    out = {}
    for bench in BENCHMARK_NAMES:
        image = generate_benchmark(get_profile(bench), scale=SCALE)
        out[bench] = attach_mfi(image, "dise4").run()
    return out


def config_grid():
    """The axes the figures sweep: placements, widths, RT geometries,
    perfect/real caches."""
    base = MachineConfig()
    grid = [("base", base)]
    for placement in ("free", "stall", "pipe"):
        grid.append((f"placement-{placement}",
                     MachineConfig(dise=DiseConfig(placement=placement))))
    for width in (2, 8):
        grid.append((f"width-{width}", base.with_changes(width=width)))
    grid.append(("rt-tiny", MachineConfig(
        dise=DiseConfig(placement="pipe", rt_entries=4, rt_assoc=1))))
    grid.append(("rt-perfect", MachineConfig(
        dise=DiseConfig(placement="pipe", rt_perfect=True))))
    grid.append(("il1-4k", base.with_il1_size(4 * KB)))
    grid.append(("perfect-caches", base.with_changes(
        il1=None, dl1=None, l2=None)))
    return grid


def result_fields(result):
    return {f.name: getattr(result, f.name)
            for f in dataclasses.fields(result)}


def assert_identical(trace, config, warm_start):
    ref = simulate_trace(trace, config, warm_start=warm_start,
                         engine="reference")
    out = simulate_trace(trace, config, warm_start=warm_start,
                         engine="outcome")
    ref_fields = result_fields(ref)
    out_fields = result_fields(out)
    diffs = {name: (ref_fields[name], out_fields[name])
             for name in ref_fields if ref_fields[name] != out_fields[name]}
    assert not diffs, (config, warm_start, diffs)


class TestEngineResolution:
    def test_default_is_outcome(self, monkeypatch):
        monkeypatch.delenv("REPRO_CYCLE", raising=False)
        assert resolve_cycle_engine() == "outcome"

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_CYCLE", "reference")
        assert resolve_cycle_engine() == "reference"

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CYCLE", "reference")
        assert resolve_cycle_engine("outcome") == "outcome"

    def test_invalid_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_cycle_engine("speculative")
        monkeypatch.setenv("REPRO_CYCLE", "speculative")
        with pytest.raises(ValueError):
            resolve_cycle_engine()

    def test_simulator_resolves(self):
        assert CycleSimulator(engine="reference").engine == "reference"
        assert CycleSimulator().engine == resolve_cycle_engine()


class TestConfigGridEquality:
    """Every CycleResult field identical, per profile, over the grid."""

    @pytest.mark.parametrize("bench", BENCHMARK_NAMES)
    def test_profile_grid(self, traces, bench):
        trace = traces[bench]
        for _label, config in config_grid():
            assert_identical(trace, config, warm_start=True)

    def test_cold_replays(self, traces):
        trace = traces["mcf"]
        for _label, config in config_grid():
            assert_identical(trace, config, warm_start=False)

    def test_observer_and_telemetry_identical(self, traces):
        trace = traces["gcc"]
        config = MachineConfig(dise=DiseConfig(placement="stall"))
        streams = {}
        counters = {}
        for engine in ("reference", "outcome"):
            retired = []
            with _telemetry.enabled_scope(True):
                before = _telemetry.snapshot()
                simulate_trace(
                    trace, config, warm_start=True,
                    retire_observer=lambda op, t: retired.append(
                        (op.pc, t)),
                    engine=engine)
                delta = _telemetry.snapshot_delta(before,
                                                  _telemetry.snapshot())
            streams[engine] = retired
            counters[engine] = {k: v for k, v in delta.items()
                                if k.startswith("cycle.")
                                and not k.startswith("cycle.outcome.")}
        assert streams["reference"] == streams["outcome"]
        assert counters["reference"] == counters["outcome"]


def counter_value(delta, name):
    entry = delta.get(name)
    return entry["value"] if entry else 0


class TestOutcomeMemos:
    def test_sweep_reuses_component_columns(self, traces):
        """A placement/width sweep recomputes nothing after the first
        replay; an RT-geometry sweep recomputes only the RT column."""
        trace = traces["mcf"]
        base = MachineConfig()
        with _telemetry.enabled_scope(True):
            simulate_trace(trace, base, warm_start=True, engine="outcome")

            def delta_for(config):
                before = _telemetry.snapshot()
                simulate_trace(trace, config, warm_start=True,
                               engine="outcome")
                return _telemetry.snapshot_delta(before,
                                                 _telemetry.snapshot())

            sweep = delta_for(MachineConfig(
                dise=DiseConfig(placement="stall")))
            # Same components, different placement: every Phase A column
            # is a memo hit.
            for component in ("mem", "ctrl", "rt"):
                assert counter_value(
                    sweep, f"cycle.outcome.{component}.misses"
                ) == 0, (component, sweep)
            rt_sweep = delta_for(MachineConfig(
                dise=DiseConfig(rt_entries=64, rt_assoc=1)))
            assert counter_value(rt_sweep, "cycle.outcome.rt.misses") == 1
            assert counter_value(rt_sweep, "cycle.outcome.mem.misses") == 0
            assert counter_value(rt_sweep, "cycle.outcome.ctrl.misses") == 0

    def test_memos_are_transient_across_serialization(self, traces):
        """An RDTC3 round-trip carries no memo state and recomputes
        correctly."""
        trace = traces["vortex"]
        config = MachineConfig()
        original = simulate_trace(trace, config, warm_start=True,
                                  engine="outcome")
        assert trace._outcome_memos, "outcome replay left no memo state"
        assert trace._static_cols is not None
        restored = deserialize_trace(serialize_trace(trace))
        assert restored._outcome_memos is None
        assert restored._static_cols is None
        assert restored._warm_states is None
        replayed = simulate_trace(restored, config, warm_start=True,
                                  engine="outcome")
        assert result_fields(replayed) == result_fields(original)


class TestWarmMemoLRU:
    def test_interleaved_sweep_keeps_hot_entry(self, traces):
        """An 8+1-geometry interleaved sweep keeps the hot geometry
        resident: hits refresh recency, so the 9 cold geometries evict
        each other instead of the entry every other replay touches."""
        from repro.sim.cycle import _WARM_MEMO_LIMIT

        trace = traces["gzip"]
        hot = MachineConfig()
        hot_signature = CycleSimulator(hot)._warm_signature()
        cold = [hot.with_il1_size((4 + i) * KB)
                for i in range(_WARM_MEMO_LIMIT + 1)]
        assert len({CycleSimulator(c)._warm_signature() for c in cold}
                   | {hot_signature}) == _WARM_MEMO_LIMIT + 2

        simulate_trace(trace, hot, warm_start=True, engine="reference")
        for config in cold:
            simulate_trace(trace, config, warm_start=True,
                           engine="reference")
            # The interleaved hot replay must hit the memo every time.
            states = trace._warm_states
            assert hot_signature in states
            simulate_trace(trace, hot, warm_start=True, engine="reference")
        assert hot_signature in trace._warm_states
        assert len(trace._warm_states) <= _WARM_MEMO_LIMIT
