"""Interactions between ACFs: recursion limits and composition necessity."""

import pytest

from repro.acf.composition import compose_dise_dise
from repro.acf.compression import DISE_OPTIONS, compress_image
from repro.acf.mfi import MFI_FAULT_CODE, ensure_error_stub, mfi_production_set
from repro.core.controller import DiseController
from repro.isa.build import Imm, bis, halt, ldq, out, sll, stq
from repro.program.builder import ProgramBuilder
from repro.sim.functional import Machine, run_program

from conftest import A0, A1, T0, ZERO


def wild_store_with_padding():
    """A wild store surrounded by compressible legal code, so the
    compressor swallows the wild store into a dictionary entry."""
    b = ProgramBuilder()
    b.alloc_data("buf", 8, init=[1] * 8)
    b.label("main")
    b.load_address(A1, "buf")
    for off in (0, 8, 0, 8, 0, 8, 0, 8):
        b.emit(ldq(A0, off, A1))
        b.emit(stq(A0, off, A1))
    # Legal twins of the wild idiom below (segment 1 is the data segment):
    # same shape, so all four share one parameterized dictionary entry and
    # the wild store ends up inside a codeword.
    for _ in range(3):
        b.emit(bis(ZERO, Imm(1), T0))
        b.emit(sll(T0, Imm(26), T0))
        b.emit(stq(A0, 0, T0))
    b.emit(bis(ZERO, Imm(3), T0))
    b.emit(sll(T0, Imm(26), T0))
    b.emit(stq(A0, 0, T0))
    b.emit(out(A0))
    b.emit(halt())
    return b.build()


class TestNoRecursiveExpansion:
    """Section 3.3: "DISE does not treat instructions in a replacement
    sequence as candidates for subsequent expansion." — so merely
    installing MFI alongside decompression does NOT protect decompressed
    instructions; composition is required."""

    def test_naive_stacking_misses_compressed_stores(self):
        image = wild_store_with_padding()
        result = compress_image(image, DISE_OPTIONS)
        compressed = ensure_error_stub(result.image)

        # Check whether the wild store was compressed into a codeword.
        wild_swallowed = all(
            not (i.is_store and i.rb == T0)
            for i in compressed.instructions
        )
        if not wild_swallowed:
            pytest.skip("compressor left the wild store uncompressed")

        controller = DiseController()
        controller.install(result.production_set)
        controller.install(mfi_production_set(compressed, "dise3"))
        machine = Machine(compressed, controller=controller)
        machine.regs[34] = compressed.data_base >> 26   # $dr2
        machine.regs[35] = compressed.text_base >> 26   # $dr3
        run = machine.run()

        # The decompressed wild store executed UNCHECKED: no fault, memory
        # corrupted — the paper's no-recursion rule in action.
        assert run.fault_code != MFI_FAULT_CODE
        assert run.final_memory.read(3 << 26) != 0

    def test_composition_closes_the_hole(self):
        image = wild_store_with_padding()
        result, installation = compose_dise_dise(image)
        run = installation.run()
        assert run.fault_code == MFI_FAULT_CODE
        assert run.final_memory.read(3 << 26) == 0

    def test_uncompressed_residual_stores_still_checked_when_stacked(self):
        """Naive stacking does check *naturally occurring* stores that
        survived compression."""
        b = ProgramBuilder()
        b.alloc_data("buf", 4, init=[1, 2, 3, 4])
        b.label("main")
        b.load_address(A1, "buf")
        b.emit(bis(ZERO, Imm(3), T0))
        b.emit(sll(T0, Imm(26), T0))
        b.emit(stq(A0, 0, T0))    # wild store, nothing compressible around
        b.emit(halt())
        image = b.build()
        result = compress_image(image, DISE_OPTIONS)
        compressed = ensure_error_stub(result.image)
        controller = DiseController()
        if result.production_set is not None:
            controller.install(result.production_set)
        controller.install(mfi_production_set(compressed, "dise3"))
        machine = Machine(compressed, controller=controller)
        machine.regs[34] = compressed.data_base >> 26
        machine.regs[35] = compressed.text_base >> 26
        run = machine.run()
        assert run.fault_code == MFI_FAULT_CODE


class TestPatternPrecedence:
    def test_equal_specificity_first_definition_wins(self):
        from repro.core.engine import DiseEngine
        from repro.core.pattern import match_stores
        from repro.core.production import ProductionSet
        from repro.core.replacement import identity_replacement
        from repro.acf.tracing import sat_production_set

        pset = ProductionSet("both")
        first = pset.define(match_stores(), identity_replacement())
        second = pset.define(match_stores(), identity_replacement())
        engine = DiseEngine()
        engine.set_production_set(pset)
        production = engine.match(stq(A0, 0, A1))
        assert production.seq_id == first

    def test_opcode_pattern_beats_opclass_pattern_across_sets(self):
        """Two installed ACFs with overlapping patterns: the more specific
        (opcode-level) pattern takes the trigger."""
        from repro.acf.monitor import count_opcodes
        from repro.acf.tracing import sat_production_set
        from repro.isa.opcodes import Opcode

        controller = DiseController()
        controller.install(sat_production_set())          # store opclass
        controller.install(count_opcodes([Opcode.STQ]))   # stq opcode
        production = controller.engine.match(stq(A0, 0, A1))
        assert production.name == "count-stq"
