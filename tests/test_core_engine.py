"""Unit tests for the DISE engine: matching, IL instantiation, caching."""

import pytest

from repro.core.directives import AbsTarget, Lit, T_IMM, T_PC, T_RD, T_RS, T_RT, TrigField
from repro.core.engine import DiseEngine, ExpansionError, instantiate
from repro.core.pattern import PatternSpec, match_loads, match_opcode, match_stores
from repro.core.production import ProductionSet
from repro.core.replacement import (
    TRIGGER_INSN,
    ReplacementInstr,
    ReplacementSpec,
    identity_replacement,
)
from repro.isa.build import addq, codeword, ldq, stq
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import dise_reg


def mfi_spec():
    return ReplacementSpec(name="R1", instrs=(
        ReplacementInstr(opcode=Opcode.SRL, ra=T_RS, imm=Lit(26),
                         rc=Lit(dise_reg(1))),
        ReplacementInstr(opcode=Opcode.XOR, ra=Lit(dise_reg(1)),
                         rb=Lit(dise_reg(2)), rc=Lit(dise_reg(1))),
        ReplacementInstr(opcode=Opcode.BNE, ra=Lit(dise_reg(1)),
                         imm=AbsTarget(0x400100)),
        TRIGGER_INSN,
    ))


def engine_with(pset):
    engine = DiseEngine()
    engine.set_production_set(pset)
    return engine


def mfi_engine():
    pset = ProductionSet("mfi")
    seq_id = pset.define(match_stores(), mfi_spec())
    pset.add_production(match_loads(), seq_id=seq_id)
    return engine_with(pset)


class TestMatching:
    def test_trigger_matches(self):
        engine = mfi_engine()
        assert engine.match(stq(16, 0, 18)) is not None
        assert engine.match(ldq(16, 0, 18)) is not None
        assert engine.match(addq(1, 2, 3)) is None

    def test_most_specific_wins(self):
        pset = ProductionSet("neg")
        general = pset.define(match_loads(), mfi_spec())
        specific = pset.define(
            PatternSpec(opclass=OpClass.LOAD, regs={"rs": 30}),
            identity_replacement(),
        )
        engine = engine_with(pset)
        # sp-relative load hits the identity production.
        exp, _, _ = engine.process(ldq(1, 0, 30), 0x400000)
        assert len(exp.instrs) == 1
        # other loads hit the general production.
        exp, _, _ = engine.process(ldq(1, 0, 5), 0x400000)
        assert len(exp.instrs) == 4

    def test_no_production_set(self):
        engine = DiseEngine()
        exp, pt_miss, rt_miss = engine.process(ldq(1, 0, 2), 0)
        assert exp is None and not pt_miss and not rt_miss

    def test_clearing_productions(self):
        engine = mfi_engine()
        engine.set_production_set(None)
        assert engine.match(stq(1, 0, 2)) is None

    def test_tagged_dispatch(self):
        pset = ProductionSet("aware")
        pset.add_replacement(5, identity_replacement())
        pset.add_replacement(9, mfi_spec())
        pset.add_production(match_opcode(Opcode.RES0), tagged=True)
        engine = engine_with(pset)
        exp, _, _ = engine.process(codeword(Opcode.RES0, 1, 2, 3, 5), 0)
        assert exp.seq_id == 5 and len(exp.instrs) == 1
        exp, _, _ = engine.process(codeword(Opcode.RES0, 1, 2, 3, 9), 0)
        assert exp.seq_id == 9 and len(exp.instrs) == 4

    def test_undefined_tag_raises(self):
        pset = ProductionSet("aware")
        pset.add_replacement(5, identity_replacement())
        pset.add_production(match_opcode(Opcode.RES0), tagged=True)
        engine = engine_with(pset)
        with pytest.raises(ExpansionError):
            engine.process(codeword(Opcode.RES0, 1, 2, 3, 6), 0)


class TestInstantiation:
    def test_mfi_expansion(self):
        engine = mfi_engine()
        trigger = stq(16, 8, 18)     # address register a2
        exp, _, _ = engine.process(trigger, 0x400020)
        srl, xor, bne, copy = exp.instrs
        assert srl.ra == 18, "T.RS instantiated from the trigger"
        assert srl.rc == dise_reg(1)
        assert bne.imm == (0x400100 - 0x400024) // 4
        assert copy == trigger
        assert exp.trigger_offsets == (3,)

    def test_imm_and_rd_directives(self):
        spec = ReplacementSpec(instrs=(
            ReplacementInstr(opcode=Opcode.LDA, ra=T_RD, rb=T_RS, imm=T_IMM),
        ))
        exp = instantiate(spec, 0, ldq(5, 24, 7), 0)
        lda = exp.instrs[0]
        assert (lda.ra, lda.rb, lda.imm) == (5, 7, 24)

    def test_pc_directive(self):
        spec = ReplacementSpec(instrs=(
            ReplacementInstr(opcode=Opcode.BIS, ra=Lit(31), imm=T_PC,
                             rc=Lit(dise_reg(7))),
        ))
        exp = instantiate(spec, 0, ldq(5, 0, 7), 0x400123 & ~3)
        assert exp.instrs[0].imm == 0x400120

    def test_codeword_parameters(self):
        spec = ReplacementSpec(instrs=(
            ReplacementInstr(opcode=Opcode.LDA, ra=TrigField("p1"),
                             rb=TrigField("p1"), imm=TrigField("p2")),
        ))
        trigger = codeword(Opcode.RES0, 18, 8, 31, 0)
        exp = instantiate(spec, 0, trigger, 0)
        lda = exp.instrs[0]
        assert lda.ra == 18 and lda.rb == 18
        assert lda.imm == 8

    def test_p2_sign_extension(self):
        spec = ReplacementSpec(instrs=(
            ReplacementInstr(opcode=Opcode.LDA, ra=TrigField("p1"),
                             rb=TrigField("p1"), imm=TrigField("p2")),
        ))
        trigger = codeword(Opcode.RES0, 18, (-8) & 0x1F, 31, 0)
        exp = instantiate(spec, 0, trigger, 0)
        assert exp.instrs[0].imm == -8

    def test_p23_concatenation(self):
        spec = ReplacementSpec(instrs=(
            ReplacementInstr(opcode=Opcode.BNE, ra=TrigField("p1"),
                             imm=TrigField("p23")),
        ))
        offset = -25
        raw = offset & 0x3FF
        trigger = codeword(Opcode.RES0, 21, (raw >> 5) & 0x1F, raw & 0x1F, 0)
        exp = instantiate(spec, 0, trigger, 0)
        assert exp.instrs[0].imm == -25

    def test_missing_trigger_field_raises(self):
        spec = ReplacementSpec(instrs=(
            ReplacementInstr(opcode=Opcode.BIS, ra=T_RT, rb=T_RT,
                             rc=Lit(dise_reg(0))),
        ))
        with pytest.raises(ExpansionError):
            instantiate(spec, 0, ldq(5, 0, 7), 0)  # loads have no T.RT

    def test_unaligned_abs_target_raises(self):
        spec = ReplacementSpec(instrs=(
            ReplacementInstr(opcode=Opcode.BNE, ra=Lit(1),
                             imm=AbsTarget(0x400002)),
        ))
        with pytest.raises(ExpansionError):
            instantiate(spec, 0, ldq(5, 0, 7), 0x400000)


class TestCachingAndStats:
    def test_expansion_cache_reuses_objects(self):
        engine = mfi_engine()
        exp1, _, _ = engine.process(stq(16, 8, 18), 0x400020)
        exp2, _, _ = engine.process(stq(16, 8, 18), 0x400020)
        assert exp1 is exp2

    def test_pc_dependent_specs_not_shared_across_pcs(self):
        engine = mfi_engine()   # MFI uses AbsTarget: pc-dependent
        exp1, _, _ = engine.process(stq(16, 8, 18), 0x400020)
        exp2, _, _ = engine.process(stq(16, 8, 18), 0x400040)
        assert exp1.instrs[2].imm != exp2.instrs[2].imm

    def test_counters(self):
        engine = mfi_engine()
        engine.process(stq(16, 8, 18), 0)
        engine.process(addq(1, 2, 3), 0)
        assert engine.inspected == 2
        assert engine.expansions == 1

    def test_pt_rt_miss_flags(self):
        engine = mfi_engine()
        _, pt1, rt1 = engine.process(stq(16, 8, 18), 0)
        _, pt2, rt2 = engine.process(stq(16, 8, 18), 0)
        assert pt1 and rt1, "first touch misses both tables"
        assert not pt2 and not rt2
