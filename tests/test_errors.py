"""The shared structured error taxonomy (repro.errors)."""

import pytest

from repro.errors import (
    AcfConfigError,
    AcfError,
    CacheCorruptionError,
    CampaignError,
    CheckpointError,
    CircuitOpenError,
    ExecutionError,
    ExecutionTimeout,
    FabricError,
    HarnessError,
    ReproError,
    SimulationError,
    TaskError,
    TaskTimeoutError,
    WorkerCrashError,
    backoff_delay,
    is_retryable,
)
from repro.isa.build import halt, jmp, li
from repro.isa.opcodes import Opcode
from repro.program.builder import ProgramBuilder
from repro.sim.functional import run_program

T0 = 1


def _build(instrs):
    builder = ProgramBuilder()
    builder.label("main")
    for instr in instrs:
        builder.emit(instr)
    builder.set_entry("main")
    return builder.build()


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for cls in (SimulationError, ExecutionError, ExecutionTimeout,
                    AcfError, AcfConfigError, HarnessError, TaskError,
                    WorkerCrashError, TaskTimeoutError, CacheCorruptionError,
                    CheckpointError, CampaignError):
            assert issubclass(cls, ReproError)

    def test_simulation_errors_keep_runtime_error_base(self):
        assert issubclass(ExecutionError, RuntimeError)

    def test_acf_errors_keep_value_error_shim(self):
        # One-release deprecation shim: legacy ``except ValueError``
        # around ACF construction keeps working.
        assert issubclass(AcfError, ValueError)
        assert issubclass(AcfConfigError, ValueError)

    def test_retryability_drives_harness_policy(self):
        assert WorkerCrashError("w").retryable
        assert TaskTimeoutError("t").retryable
        assert not ExecutionError("e").retryable
        assert not CacheCorruptionError("c").retryable


class TestDetails:
    def test_details_carry_machine_readable_fields(self):
        err = ExecutionError("boom", pc=0x400010, index=4,
                             opcode=Opcode.LDQ)
        details = err.details()
        assert details["type"] == "ExecutionError"
        assert details["message"] == "boom"
        assert details["pc"] == 0x400010
        assert details["index"] == 4
        assert details["opcode"] == "LDQ"

    def test_timeout_records_budget(self):
        err = ExecutionTimeout("slow", steps=1000, index=3)
        assert err.details()["steps"] == 1000
        assert isinstance(err, ExecutionError)

    def test_task_errors_record_attempts(self):
        err = TaskTimeoutError("hung", task="TraceTask(...)", attempts=2,
                               timeout=1.5)
        details = err.details()
        assert details["attempts"] == 2
        assert details["timeout"] == 1.5


class TestSimulatorRaises:
    def test_bad_jump_carries_fault_site(self):
        image = _build([li(3, T0), jmp(T0), halt()])
        from repro.sim.functional import Machine

        machine = Machine(image, record_trace=False)
        machine.run(max_steps=100)
        # Wild jumps are an architectural fault, not a model error.
        assert machine.fault_code is not None

    def test_timeout_is_structured(self):
        from repro.isa.build import br

        builder = ProgramBuilder()
        builder.label("main")
        builder.emit(jmp_self := br("main"))
        builder.set_entry("main")
        image = builder.build()
        with pytest.raises(ExecutionTimeout) as excinfo:
            run_program(image, record_trace=False, max_steps=50)
        assert excinfo.value.steps == 50
        assert isinstance(excinfo.value, SimulationError)

    def test_mfi_error_is_acf_error_and_value_error(self):
        from repro.acf.mfi import MfiError, mfi_production_source

        with pytest.raises(MfiError):
            mfi_production_source("nonsense")
        with pytest.raises(ValueError):       # the deprecation shim
            mfi_production_source("nonsense")
        assert issubclass(MfiError, AcfError)

    def test_acf_config_errors_replace_bare_value_error(self):
        from repro.acf.composition import build_composition
        from repro.workloads.generator import generate_by_name

        image = generate_by_name("mcf", scale=0.05)
        with pytest.raises(AcfConfigError):
            build_composition(image, "nonsense")
        with pytest.raises(ValueError):       # the deprecation shim
            build_composition(image, "nonsense")


class TestRetryClassification:
    def test_repro_errors_answer_for_themselves(self):
        assert not is_retryable(CampaignError("config mistake"))
        assert not is_retryable(ExecutionError("stray codeword"))
        assert is_retryable(WorkerCrashError("worker died"))
        assert is_retryable(TaskTimeoutError("hung"))
        assert is_retryable(CircuitOpenError("pool broke"))

    def test_unknown_exceptions_are_transient_infrastructure(self):
        # Anything outside the taxonomy (a pickled RuntimeError from a
        # dying worker, an OSError from the pool) is retried.
        assert is_retryable(RuntimeError("worker killed"))
        assert is_retryable(OSError("fork failed"))

    def test_fabric_errors_sit_in_the_hierarchy(self):
        assert issubclass(FabricError, HarnessError)
        assert issubclass(CircuitOpenError, FabricError)


class TestBackoffDelay:
    def test_deterministic_per_key_and_attempt(self):
        assert backoff_delay(1, key="f0001") == backoff_delay(1,
                                                              key="f0001")
        assert backoff_delay(1, key="f0001") != backoff_delay(1,
                                                              key="f0002")
        assert backoff_delay(1, key="f0001") != backoff_delay(2,
                                                              key="f0001")

    def test_exponential_window_with_bounded_jitter(self):
        for attempt in (1, 2, 3, 4):
            window = 0.5 * (2 ** (attempt - 1))
            delay = backoff_delay(attempt, key="t")
            assert 0.5 * window <= delay <= window

    def test_cap_bounds_the_window(self):
        assert backoff_delay(30, cap=2.0, key="t") <= 2.0

    def test_zero_base_disables_sleeping(self):
        assert backoff_delay(3, base=0.0, key="t") == 0.0
        assert backoff_delay(3, base=-1.0) == 0.0
