"""Unit and property tests for the physical PT and RT models."""

import pytest
from hypothesis import given, strategies as st

from repro.core.tables import PatternTable, ReplacementTable
from repro.isa.opcodes import Opcode


class TestPatternTable:
    def make_pt(self, entries=4):
        pt = PatternTable(entries=entries)
        pt.set_active_patterns({
            Opcode.LDQ: [0, 1],
            Opcode.STQ: [1],
            Opcode.BNE: [2],
        })
        return pt

    def test_no_active_patterns_no_miss(self):
        pt = self.make_pt()
        assert pt.access(Opcode.ADDQ) is False
        assert pt.accesses == 0

    def test_first_access_misses_then_hits(self):
        pt = self.make_pt()
        assert pt.access(Opcode.LDQ) is True
        assert pt.access(Opcode.LDQ) is False
        assert pt.miss_rate == 0.5

    def test_fill_granularity_is_per_opcode(self):
        pt = self.make_pt()
        pt.access(Opcode.LDQ)   # fills patterns 0 and 1
        # STQ's pattern (1) is now resident: no miss.
        assert pt.access(Opcode.STQ) is False

    def test_counts(self):
        pt = self.make_pt()
        assert pt.active_count(Opcode.LDQ) == 2
        assert pt.resident_count(Opcode.LDQ) == 0
        pt.access(Opcode.LDQ)
        assert pt.resident_count(Opcode.LDQ) == 2

    def test_eviction_and_refill(self):
        pt = self.make_pt(entries=2)
        pt.access(Opcode.LDQ)       # fills 0, 1 (table full)
        assert pt.access(Opcode.BNE) is True   # evicts an LDQ pattern
        assert pt.access(Opcode.LDQ) is True   # refill miss

    def test_install_clears_residence(self):
        pt = self.make_pt()
        pt.access(Opcode.LDQ)
        pt.set_active_patterns({Opcode.LDQ: [0]})
        assert pt.access(Opcode.LDQ) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            PatternTable(entries=0)


class TestReplacementTable:
    def test_perfect_never_misses(self):
        rt = ReplacementTable(perfect=True)
        for seq in range(100):
            assert rt.access_sequence(seq, 8) is False

    def test_first_access_misses(self):
        rt = ReplacementTable(entries=64, assoc=2)
        assert rt.access_sequence(0, 4) is True
        assert rt.access_sequence(0, 4) is False

    def test_fill_covers_whole_sequence(self):
        rt = ReplacementTable(entries=64, assoc=2)
        rt.access_sequence(3, 6)
        assert rt.fills == 6

    def test_capacity_thrashing(self):
        rt = ReplacementTable(entries=8, assoc=1)
        # 4 sequences x 4 entries = 16 entries in an 8-entry RT: they can't
        # all be resident at once.
        for _ in range(3):
            for seq in range(4):
                rt.access_sequence(seq, 4)
        assert rt.misses > 4

    def test_associativity_helps_conflicts(self):
        results = {}
        for assoc in (1, 2):
            rt = ReplacementTable(entries=16, assoc=assoc)
            for _ in range(4):
                for seq in (0, 4):   # hash to overlapping sets
                    rt.access_sequence(seq, 8)
            results[assoc] = rt.misses
        assert results[2] <= results[1]

    def test_invalidate(self):
        rt = ReplacementTable(entries=64, assoc=2)
        rt.access_sequence(0, 2)
        rt.invalidate()
        assert rt.access_sequence(0, 2) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplacementTable(entries=10, assoc=4)   # not a multiple
        with pytest.raises(ValueError):
            ReplacementTable(entries=0, assoc=1)

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 8)),
                    min_size=1, max_size=200))
    def test_bigger_rt_never_misses_more(self, accesses):
        small = ReplacementTable(entries=32, assoc=2)
        large = ReplacementTable(entries=256, assoc=2)
        for seq, length in accesses:
            small.access_sequence(seq, length)
            large.access_sequence(seq, length)
        # With few enough distinct entries to fit the big RT entirely,
        # the big RT sees only cold misses and can't miss more often.
        assert large.misses <= small.misses or large.misses <= len(
            {seq for seq, _ in accesses}
        )

    @given(st.integers(0, 2047), st.integers(1, 16))
    def test_immediate_rehit(self, seq, length):
        rt = ReplacementTable(entries=2048, assoc=2)
        rt.access_sequence(seq, length)
        assert rt.access_sequence(seq, length) is False


class TestBlockCoalescing:
    """Section 2.2's coalescing option: fewer read ports, internal
    fragmentation."""

    def test_block_geometry_validation(self):
        with pytest.raises(ValueError):
            ReplacementTable(entries=64, assoc=2, block_size=0)
        with pytest.raises(ValueError):
            ReplacementTable(entries=30, assoc=2, block_size=4)

    def test_blocks_fill_as_units(self):
        rt = ReplacementTable(entries=64, assoc=2, block_size=4)
        rt.access_sequence(0, 5)   # 2 blocks (ceil(5/4))
        assert rt.fills == 2

    def test_fragmentation_reduces_effective_capacity(self):
        """Many short sequences: blocked RT holds fewer of them."""
        flat = ReplacementTable(entries=32, assoc=2, block_size=1)
        blocked = ReplacementTable(entries=32, assoc=2, block_size=4)
        for _ in range(4):
            for seq in range(16):
                flat.access_sequence(seq, 2)
                blocked.access_sequence(seq, 2)
        # 16 sequences x 2 instrs = 32 entries fit the flat RT exactly;
        # blocked they need 16 x 4 = 64 slots and thrash.
        assert flat.misses == 16
        assert blocked.misses > flat.misses

    def test_long_sequences_unaffected_by_fragmentation(self):
        """Sequences that fill whole blocks waste no capacity: a working
        set that exactly fits sees only cold misses."""
        blocked = ReplacementTable(entries=64, assoc=2, block_size=4)
        for _ in range(3):
            for seq in range(4):
                blocked.access_sequence(seq, 4)
        assert blocked.misses == 4

    def test_perfect_ignores_blocks(self):
        rt = ReplacementTable(perfect=True, block_size=4)
        assert rt.access_sequence(0, 7) is False
