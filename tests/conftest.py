"""Shared fixtures and helpers for the test suite."""

import os

import pytest

from repro.isa.build import (
    Imm,
    addq,
    bis,
    bne,
    bsr,
    halt,
    lda,
    ldq,
    out,
    ret,
    stq,
    subq,
)
from repro.isa.registers import parse_reg
from repro.program.builder import ProgramBuilder

A0 = parse_reg("a0")
A1 = parse_reg("a1")
A2 = parse_reg("a2")
T0 = parse_reg("t0")
T1 = parse_reg("t1")
RA = parse_reg("ra")
SP = parse_reg("sp")
V0 = parse_reg("v0")
ZERO = parse_reg("zero")


@pytest.fixture(autouse=True, scope="session")
def _hermetic_trace_cache(tmp_path_factory):
    """Unless the caller pins a cache location, point the persistent trace
    cache at a per-session temp directory so test runs never touch (or
    depend on) the user's real ``~/.cache/repro-dise``."""
    if "REPRO_TRACE_CACHE" not in os.environ:
        os.environ["REPRO_TRACE_CACHE"] = str(
            tmp_path_factory.mktemp("trace-cache")
        )
    yield


def build_loop_program(iterations=5, with_function=False):
    """A small program: sums iterations into memory, emits a checksum.

    Exercises loads, stores, arithmetic, a loop branch, and (optionally) a
    call/return pair.  All memory accesses stay inside the data segment.
    """
    b = ProgramBuilder()
    b.alloc_data("acc", 4, init=[0])
    b.label("main")
    b.load_address(A1, "acc")
    b.emit(bis(ZERO, Imm(iterations), T0))
    if with_function:
        b.emit(bis(ZERO, ZERO, V0))
    b.label("loop")
    b.emit(ldq(A0, 0, A1))
    b.emit(addq(A0, T0, A0))
    b.emit(stq(A0, 0, A1))
    if with_function:
        b.emit(bsr(RA, "leaf"))
    b.emit(subq(T0, Imm(1), T0))
    b.emit(bne(T0, "loop"))
    b.emit(ldq(A0, 0, A1))
    b.emit(out(A0))
    b.emit(halt())
    if with_function:
        b.label("leaf")
        b.emit(addq(V0, Imm(1), V0))
        b.emit(ret(RA))
    b.set_entry("main")
    return b.build()


@pytest.fixture
def loop_image():
    return build_loop_program()


@pytest.fixture
def call_image():
    return build_loop_program(with_function=True)


MFI_SOURCE = """
P1: T.OPCLASS == store -> R1
P2: T.OPCLASS == load  -> R1
R1:
    srl   T.RS, #26, $dr1
    xor   $dr1, $dr2, $dr1
    bne   $dr1, @__mfi_error
    T.INSN
"""
