"""Unit tests for the Instruction value type: trigger roles and dataflow."""

import pytest

from repro.isa.build import (
    Imm,
    addq,
    beq,
    bis,
    bne,
    br,
    bsr,
    cmoveq,
    codeword,
    fault,
    halt,
    jmp,
    jsr,
    lda,
    ldq,
    mulq,
    nop,
    out,
    ret,
    stq,
)
from repro.isa.instruction import Instruction, NOP
from repro.isa.opcodes import Opcode
from repro.isa.registers import ZERO_REG


class TestTriggerRoles:
    """T.RS / T.RT / T.RD / T.IMM per Section 2.1."""

    def test_load_roles(self):
        instr = ldq(5, 16, 7)      # ldq r5, 16(r7)
        assert instr.rs == 7, "T.RS of a memory op is the address register"
        assert instr.rd == 5
        assert instr.rt is None
        assert instr.imm == 16

    def test_store_roles(self):
        instr = stq(5, 16, 7)
        assert instr.rs == 7
        assert instr.rt == 5, "T.RT of a store is the data register"
        assert instr.rd is None

    def test_operate_roles(self):
        instr = addq(1, 2, 3)
        assert (instr.rs, instr.rt, instr.rd) == (1, 2, 3)

    def test_operate_immediate_roles(self):
        instr = addq(1, Imm(7), 3)
        assert instr.rs == 1 and instr.rt is None and instr.rd == 3
        assert instr.imm == 7

    def test_branch_roles(self):
        instr = bne(9, 4)
        assert instr.rs == 9
        assert instr.rd is None

    def test_jump_roles(self):
        instr = jsr(26, 27)
        assert instr.rs == 27, "T.RS of an indirect jump is the target reg"
        assert instr.rd == 26

    def test_codeword_params(self):
        cw = codeword(Opcode.RES0, 1, 2, 3, 77)
        assert (cw.ra, cw.rb, cw.rc) == (1, 2, 3)
        assert cw.tag == 77
        assert cw.is_codeword

    def test_codeword_tag_range(self):
        with pytest.raises(ValueError):
            codeword(Opcode.RES0, 1, 2, 3, 2048)
        with pytest.raises(ValueError):
            codeword(Opcode.ADDQ, 1, 2, 3, 0)

    def test_tag_only_on_codewords(self):
        assert addq(1, 2, 3).tag is None


class TestDataflow:
    def test_load_dataflow(self):
        instr = ldq(5, 0, 7)
        assert instr.source_regs() == (7,)
        assert instr.dest_reg() == 5

    def test_store_dataflow(self):
        instr = stq(5, 0, 7)
        assert set(instr.source_regs()) == {5, 7}
        assert instr.dest_reg() is None

    def test_lda_writes(self):
        assert lda(5, 8, 7).dest_reg() == 5

    def test_operate_dataflow(self):
        assert addq(1, 2, 3).source_regs() == (1, 2)
        assert addq(1, 2, 3).dest_reg() == 3

    def test_cmov_reads_old_dest(self):
        instr = cmoveq(1, 2, 3)
        assert 3 in instr.source_regs(), "conditional move reads its dest"

    def test_zero_register_excluded(self):
        instr = addq(ZERO_REG, ZERO_REG, ZERO_REG)
        assert instr.source_regs() == ()
        assert instr.dest_reg() is None

    def test_branch_dataflow(self):
        assert bne(9, 4).source_regs() == (9,)
        assert bne(9, 4).dest_reg() is None

    def test_call_writes_link(self):
        assert bsr(26, 4).dest_reg() == 26
        assert jsr(26, 27).dest_reg() == 26
        assert jsr(26, 27).source_regs() == (27,)

    def test_ret_dataflow(self):
        instr = ret(26)
        assert instr.source_regs() == (26,)

    def test_nullary_dataflow(self):
        assert nop().source_regs() == ()
        assert halt().dest_reg() is None


class TestRendering:
    @pytest.mark.parametrize("instr,text", [
        (ldq(16, 8, 30), "ldq a0, 8(sp)"),
        (addq(1, Imm(5), 2), "addq t0, #5, t1"),
        (addq(1, 2, 3), "addq t0, t1, t2"),
        (bne(1, "loop"), "bne t0, loop"),
        (jsr(26, 27), "jsr ra, (pv)"),
        (halt(), "halt"),
        (out(16), "out a0"),
        (fault(7), "fault 7"),
    ])
    def test_str(self, instr, text):
        assert str(instr) == text

    def test_immutability(self):
        instr = addq(1, 2, 3)
        with pytest.raises(Exception):
            instr.ra = 9

    def test_with_fields(self):
        instr = addq(1, 2, 3).with_fields(rc=5)
        assert instr.rc == 5 and instr.ra == 1

    def test_hashable(self):
        assert len({addq(1, 2, 3), addq(1, 2, 3), addq(1, 2, 4)}) == 2

    def test_nop_constant(self):
        assert NOP.opcode is Opcode.NOP
