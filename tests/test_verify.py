"""Tests for the differential conformance engine (:mod:`repro.verify`)."""

import json

import pytest

from repro.acf.base import plain_installation
from repro.core.language import parse_productions
from repro.errors import CheckpointError, DivergenceError
from repro.isa.build import Imm, addq, bis, halt, out, stq, subq, bne, ldq
from repro.program.builder import ProgramBuilder
from repro.sim.functional import Machine, run_program
from repro.sim.cycle import simulate_trace
from repro.verify import (
    ORACLES,
    Observer,
    VerifyConfig,
    bisect_divergence,
    run_oracle,
    run_verification,
)
from repro.verify.campaign import all_passed, load_report, save_report
from repro.verify.observe import (
    CapturingObserver,
    WindowedObserver,
    snapshot_digest,
    snapshot_state,
)

from conftest import A0, A1, T0, ZERO, build_loop_program

SCALE = 0.02
BENCHMARKS = ("bzip2", "gzip", "mcf", "parser")


# ----------------------------------------------------------------------
# Observation streams
# ----------------------------------------------------------------------
class TestObserver:
    def test_disabled_machine_is_structurally_unwrapped(self, loop_image):
        machine = Machine(loop_image)
        assert machine._observer is None
        assert machine._execute.__func__ is Machine._execute_fast

    def test_observer_machine_wraps_dispatch(self, loop_image):
        machine = Machine(loop_image, observer=Observer("full"))
        assert machine._observer is not None
        assert getattr(machine._execute, "__func__", None) \
            is not Machine._execute_fast

    def test_observation_does_not_change_execution(self, loop_image):
        baseline = run_program(loop_image, record_trace=False)
        observed = run_program(loop_image, record_trace=False,
                               observer=Observer("full"))
        assert observed.outputs == baseline.outputs
        assert observed.final_regs == baseline.final_regs
        assert observed.instructions == baseline.instructions

    def test_same_run_same_digest(self, loop_image):
        digests = []
        for _ in range(2):
            obs = Observer("full")
            run_program(loop_image, record_trace=False, observer=obs)
            digests.append((obs.hexdigest(), obs.count))
        assert digests[0] == digests[1]
        assert digests[0][1] > 0

    def test_full_counts_every_retirement(self, loop_image):
        obs = Observer("full")
        trace = run_program(loop_image, record_trace=False, observer=obs)
        assert obs.count == trace.instructions

    def test_projections_filter(self, loop_image):
        counts = {}
        for projection in ("full", "app", "user", "retire"):
            obs = Observer(projection)
            run_program(loop_image, record_trace=False, observer=obs)
            counts[projection] = obs.count
        # No DISE controller: every retirement is an app-level trigger.
        assert counts["app"] == counts["full"] == counts["retire"]
        # ``user`` skips effect-free retirements (branches, halt).
        assert 0 < counts["user"] < counts["full"]

    def test_unknown_projection_rejected(self):
        with pytest.raises(ValueError):
            Observer("nope")

    def test_windowed_observer_brackets_stream(self, loop_image):
        obs = WindowedObserver("full", window=4)
        run_program(loop_image, record_trace=False, observer=obs)
        assert len(obs.window_digests) == obs.count // 4
        plain = Observer("full")
        run_program(loop_image, record_trace=False, observer=plain)
        assert obs.hexdigest() == plain.hexdigest()

    def test_capturing_observer_half_open_range(self, loop_image):
        obs = CapturingObserver("full", lo=3, hi=7)
        run_program(loop_image, record_trace=False, observer=obs)
        assert [r.index for r in obs.records] == [3, 4, 5, 6]
        record = obs.records[0]
        assert record.text  # disassembled
        assert len(record.regs) >= 32
        assert json.dumps(record.to_dict())  # JSON-serialisable

    def test_snapshot_digest_deterministic(self, loop_image):
        traces = [run_program(loop_image) for _ in range(2)]
        assert (snapshot_digest(traces[0]) == snapshot_digest(traces[1]))
        full = snapshot_state(traces[0], scope="full")
        user = snapshot_state(traces[0], scope="user")
        assert len(user["regs"]) == 32 < len(full["regs"])


# ----------------------------------------------------------------------
# Bisection
# ----------------------------------------------------------------------
def _counting_program(n=40, bug_at=None):
    """Sum 1..n into memory; with ``bug_at`` the addend is off by one on
    that iteration — a single divergent store retirement."""
    b = ProgramBuilder()
    b.alloc_data("acc", 4, init=[0])
    b.label("main")
    b.load_address(A1, "acc")
    b.emit(bis(ZERO, Imm(n), T0))
    b.label("loop")
    b.emit(ldq(A0, 0, A1))
    b.emit(addq(A0, T0, A0))
    if bug_at is not None:
        # Off-by-one exactly when T0 == bug_at (subq sets A0 back otherwise
        # the two programs would differ in instruction count).
        b.emit(addq(A0, Imm(1), A0))
    b.emit(stq(A0, 0, A1))
    b.emit(subq(T0, Imm(1), T0))
    b.emit(bne(T0, "loop"))
    b.emit(ldq(A0, 0, A1))
    b.emit(out(A0))
    b.emit(halt())
    b.set_entry("main")
    return b.build()


class TestBisect:
    def _runner(self, image):
        def run(observer=None):
            return run_program(image, record_trace=False, observer=observer)
        return run

    def test_identical_runs_return_none(self):
        image = _counting_program()
        report = bisect_divergence(self._runner(image), self._runner(image),
                                   "full", window=8)
        assert report is None

    def test_finds_first_divergent_retirement(self):
        left = _counting_program()
        right = _counting_program(bug_at=0)  # extra addq every iteration
        report = bisect_divergence(self._runner(left), self._runner(right),
                                   "user", window=8,
                                   left_label="good", right_label="bad")
        assert report is not None
        assert report.kind in ("stream", "length")
        assert report.index is not None
        # The first user-visible divergence is the first store's value.
        rendered = report.render()
        assert "good" in rendered and "bad" in rendered
        assert report.to_dict()["index"] == report.index

    def test_reg_delta_names_registers(self):
        left = _counting_program()
        right = _counting_program(bug_at=0)
        report = bisect_divergence(self._runner(left), self._runner(right),
                                   "full", window=8)
        assert report.kind == "stream"
        # The bugged run retires an extra addq: streams diverge at the
        # instruction after the shared addq, with A0 differing by 1 on the
        # right once the extra increment retires.
        assert report.left is not None and report.right is not None

    def test_length_divergence(self):
        short = _counting_program(n=5)
        long = _counting_program(n=9)
        report = bisect_divergence(self._runner(short), self._runner(long),
                                   "full", window=4)
        assert report is not None

    def test_divergence_error_carries_report(self):
        left = _counting_program()
        right = _counting_program(bug_at=0)
        report = bisect_divergence(self._runner(left), self._runner(right),
                                   "full", window=8)
        err = DivergenceError("diverged", report=report)
        assert err.details()["report"]["kind"] == report.kind


# ----------------------------------------------------------------------
# The intentionally broken production (acceptance fixture)
# ----------------------------------------------------------------------
BROKEN_SOURCE = """
# Deliberately wrong: increments the stored register before the store and
# never restores it, so the first store retirement diverges from plain
# execution at the trigger's own pc.
P1: T.OPCLASS == store -> R1
R1:
    addq  T.RT, #1, T.RT
    T.INSN
"""


class TestBrokenProduction:
    def test_divergence_names_first_store(self):
        from repro.acf.base import AcfInstallation
        from repro.core.config import DiseConfig

        image = build_loop_program()
        pset = parse_productions(BROKEN_SOURCE, name="broken",
                                 scope="kernel")
        broken = AcfInstallation(image=image, production_sets=[pset],
                                 name="broken")
        config = DiseConfig(rt_perfect=True)

        def run_plain(observer=None):
            return run_program(image, record_trace=False, observer=observer)

        def run_broken(observer=None):
            return broken.run(dise_config=config, record_trace=False,
                              observer=observer)

        report = bisect_divergence(run_plain, run_broken, "user", window=8,
                                   left_label="plain", right_label="broken")
        assert report is not None and report.kind == "stream"
        # First divergent observation is at the first store's pc, with the
        # exact instructions on both sides.
        store_index = next(
            i for i, instr in enumerate(image.instructions)
            if instr.opcode.is_store
        )
        store_pc = image.addresses[store_index]
        assert report.left.pc == store_pc
        assert report.right.pc == store_pc
        assert "stq" in report.left.text
        assert "addq" in report.right.text
        assert report.reg_delta  # the incremented register is named
        rendered = report.render()
        assert f"{store_pc:#x}" in rendered


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
class TestOracles:
    @pytest.mark.parametrize("bench", BENCHMARKS)
    @pytest.mark.parametrize("oracle", ORACLES)
    def test_oracle_passes(self, oracle, bench):
        outcome = run_oracle(oracle, bench, scale=SCALE)
        assert outcome.status == "pass", outcome.detail
        assert outcome.checks > 0
        assert outcome.to_dict()["status"] == "pass"

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError):
            run_oracle("nope", "gzip")

    def test_transparency_catches_broken_acf(self, monkeypatch):
        """A production set that perturbs user state must diverge."""
        from repro.acf.base import AcfInstallation
        import repro.verify.oracles as oracles_mod

        def broken_acfs(image):
            pset = parse_productions(BROKEN_SOURCE, name="broken",
                                     scope="kernel")
            return (AcfInstallation(image=image, production_sets=[pset],
                                    name="broken"),)

        monkeypatch.setattr(oracles_mod, "_transparency_acfs", broken_acfs)
        outcome = run_oracle("acf_transparency", "gzip", scale=SCALE)
        assert outcome.status == "diverged"
        assert outcome.report is not None
        assert "broken" in outcome.detail


# ----------------------------------------------------------------------
# Cycle retirement observer
# ----------------------------------------------------------------------
class TestCycleRetireObserver:
    def test_sees_every_op_in_order(self, loop_image):
        trace = run_program(loop_image)
        seen = []
        simulate_trace(trace, retire_observer=lambda op, when:
                       seen.append((op, when)))
        assert [op for op, _ in seen] == trace.ops
        times = [when for _, when in seen]
        assert times == sorted(times)

    def test_default_is_no_observer(self, loop_image):
        trace = run_program(loop_image)
        result = simulate_trace(trace)
        assert result.cycles > 0


# ----------------------------------------------------------------------
# Campaign: sweep, checkpointing, resume
# ----------------------------------------------------------------------
class TestVerificationCampaign:
    CONFIG = VerifyConfig(benchmarks=("gzip",), scale=SCALE,
                          checkpoint_every=2)

    def test_sweep_passes_and_reports(self, tmp_path):
        out = tmp_path / "report.json"
        report = run_verification(self.CONFIG)
        assert all_passed(report)
        assert report["summary"]["cells"] == len(ORACLES)
        save_report(report, str(out))
        assert load_report(str(out)) == report

    def test_checkpoint_resume_skips_completed(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        calls = []
        run_verification(self.CONFIG, checkpoint_path=path,
                         progress=lambda c, s, d, t: calls.append(c))
        assert len(calls) == len(ORACLES)
        calls.clear()
        report = run_verification(self.CONFIG, checkpoint_path=path,
                                  resume=True,
                                  progress=lambda c, s, d, t:
                                  calls.append(c))
        assert calls == []  # everything restored from the checkpoint
        assert all_passed(report)

    def test_checkpoint_config_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        run_verification(self.CONFIG, checkpoint_path=path)
        other = VerifyConfig(benchmarks=("gzip",), scale=SCALE,
                             variant="dise4")
        with pytest.raises(CheckpointError):
            run_verification(other, checkpoint_path=path, resume=True)

    def test_resume_without_checkpoint_path_refused(self):
        with pytest.raises(CheckpointError):
            run_verification(self.CONFIG, resume=True)

    def test_invalid_configs_rejected(self):
        with pytest.raises(Exception):
            VerifyConfig(oracles=("nope",)).validate()
        with pytest.raises(Exception):
            VerifyConfig(benchmarks=()).validate()
        with pytest.raises(Exception):
            VerifyConfig(scale=0).validate()

    def test_parallel_matches_serial(self):
        config = VerifyConfig(benchmarks=("gzip", "mcf"),
                              oracles=("acf_transparency",
                                       "functional_vs_cycle"),
                              scale=SCALE)
        serial = run_verification(config, jobs=1)
        parallel = run_verification(config, jobs=2)
        assert serial["cells"] == parallel["cells"]

    def test_telemetry_counters(self):
        from repro.telemetry import registry as _telemetry

        with _telemetry.enabled_scope(True):
            _telemetry.get_registry().reset()
            run_verification(VerifyConfig(benchmarks=("gzip",),
                                          oracles=("functional_vs_cycle",),
                                          scale=SCALE))
            snap = _telemetry.snapshot()
        assert snap["verify.oracles.run"]["value"] == 1
        assert snap["verify.oracles.passed"]["value"] == 1
        assert "verify.oracles.diverged" not in snap


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestVerifyCli:
    def test_run_and_report(self, tmp_path, capsys):
        from repro.tools.cli import main

        out = str(tmp_path / "verify.json")
        code = main(["verify", "run", "--benchmarks", "gzip",
                     "--oracle", "roundtrip,functional_vs_cycle",
                     "--scale", str(SCALE), "--out", out])
        assert code == 0
        assert "passed" in capsys.readouterr().out
        assert main(["verify", "report", "--out", out]) == 0

    def test_bisect_single_cell(self, capsys):
        from repro.tools.cli import main

        code = main(["verify", "bisect", "--oracle", "roundtrip",
                     "--benchmarks", "gzip", "--scale", str(SCALE)])
        assert code == 0
        assert "gzip:roundtrip: pass" in capsys.readouterr().out

    def test_bisect_requires_single_cell(self):
        from repro.tools.cli import main

        with pytest.raises(SystemExit):
            main(["verify", "bisect", "--oracle", "all",
                  "--benchmarks", "gzip"])
