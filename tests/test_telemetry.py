"""Tests for :mod:`repro.telemetry` — registry, events, logging, and the
instrumentation hooks in the simulators and harness.

Covers the tentpole guarantees:

* disabled mode allocates nothing and shares one no-op singleton;
* registry semantics (kind safety, snapshots, cross-process merge/delta);
* JSONL run logs round-trip and ``validate_log`` rejects malformed logs;
* seeded runs produce byte-identical metric snapshots (determinism);
* :class:`TaskFailure` records elapsed time and per-attempt timestamps;
* ``get_logger`` namespacing and ``REPRO_LOG_LEVEL`` handling.
"""

import json
import logging

import pytest

from conftest import build_loop_program
from repro.acf.mfi import attach_mfi
from repro.errors import TaskError
from repro.harness.parallel import TaskFailure, TraceTask
from repro.telemetry import events as events_mod
from repro.telemetry import registry as registry_mod
from repro.telemetry import (
    NULL_METRIC,
    Registry,
    TelemetryError,
    enabled_scope,
    final_metrics,
    read_events,
    snapshot_delta,
    validate_log,
)
from repro.telemetry.log import get_logger, reset_for_tests


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Each test starts disabled with an empty registry and no open run."""
    registry_mod.configure(False)
    registry_mod.get_registry().reset()
    events_mod._CURRENT = events_mod._INERT_RUN
    yield
    registry_mod.configure(None)
    registry_mod.get_registry().reset()
    events_mod._CURRENT = events_mod._INERT_RUN


# ----------------------------------------------------------------------
# Disabled mode
# ----------------------------------------------------------------------
class TestDisabledMode:
    def test_accessors_return_shared_null_singleton(self):
        assert registry_mod.counter("x") is NULL_METRIC
        assert registry_mod.gauge("x") is NULL_METRIC
        assert registry_mod.histogram("x") is NULL_METRIC
        assert registry_mod.timer("x") is NULL_METRIC

    def test_disabled_accessors_do_not_touch_the_registry(self):
        registry_mod.counter("sim.instructions").inc(7)
        registry_mod.histogram("h").observe(3)
        assert len(registry_mod.get_registry()) == 0
        assert registry_mod.snapshot() == {}

    def test_null_metric_absorbs_every_operation(self):
        NULL_METRIC.inc()
        NULL_METRIC.inc(10)
        NULL_METRIC.set(99)
        NULL_METRIC.observe(1.5)
        with NULL_METRIC.time():
            pass
        assert NULL_METRIC.value == 0
        assert NULL_METRIC.count == 0

    def test_disabled_machine_installs_no_instrumentation(self):
        machine = attach_mfi(build_loop_program(), "dise3").make_machine()
        assert machine._opcode_counts is None
        assert machine.engine._tm is None

    def test_start_run_is_inert(self, tmp_path):
        run = events_mod.start_run(log_dir=tmp_path)
        assert not run.active
        assert run.path is None
        run.emit("event", name="ignored")
        with run.span("phase"):
            pass
        assert events_mod.finish_run() is None
        assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram_timer(self):
        reg = Registry()
        c = reg.counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        g = reg.gauge("g")
        g.set(3)
        g.set(1)
        assert g.value == 1
        h = reg.histogram("h")
        for v in (4, 2, 9):
            h.observe(v)
        assert (h.count, h.total, h.min, h.max) == (3, 15, 2, 9)
        assert h.mean == 5.0
        t = reg.timer("t")
        with t.time():
            pass
        assert t.count == 1 and t.total >= 0

    def test_same_name_returns_same_object(self):
        reg = Registry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_mismatch_raises(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered as counter"):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_snapshot_is_sorted_and_json_compatible(self):
        reg = Registry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(7)
        reg.histogram("c").observe(3)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["a"] == {"type": "gauge", "value": 7}
        assert snap["b"] == {"type": "counter", "value": 2}
        assert snap["c"]["count"] == 1
        json.dumps(snap)  # must not raise

    def test_merge_folds_worker_snapshot(self):
        parent = Registry()
        parent.counter("c").inc(1)
        parent.histogram("h").observe(5)
        worker = Registry()
        worker.counter("c").inc(2)
        worker.gauge("g").set(4)
        worker.histogram("h").observe(1)
        worker.histogram("h").observe(9)
        parent.merge(worker.snapshot())
        snap = parent.snapshot()
        assert snap["c"]["value"] == 3
        assert snap["g"]["value"] == 4
        assert snap["h"]["count"] == 3
        assert snap["h"]["min"] == 1 and snap["h"]["max"] == 9

    def test_snapshot_delta_reports_only_growth(self):
        reg = Registry()
        reg.counter("stable").inc(5)
        reg.counter("hot").inc(1)
        before = reg.snapshot()
        reg.counter("hot").inc(3)
        reg.histogram("new").observe(2)
        delta = snapshot_delta(before, reg.snapshot())
        assert delta["hot"] == {"type": "counter", "value": 3}
        assert "stable" not in delta
        assert delta["new"]["count"] == 1

    def test_enabled_scope_restores_previous_state(self):
        assert not registry_mod.enabled()
        with enabled_scope(True):
            assert registry_mod.enabled()
            assert registry_mod.counter("c") is not NULL_METRIC
        assert not registry_mod.enabled()


# ----------------------------------------------------------------------
# JSONL run events
# ----------------------------------------------------------------------
class TestRunEvents:
    def test_round_trip_and_validation(self, tmp_path):
        with enabled_scope(True):
            run = events_mod.start_run(log_dir=tmp_path, run_id="run-test",
                                       argv=["experiment", "fig6_top"])
            assert run.active
            registry_mod.counter("sim.instructions").inc(42)
            with events_mod.span("experiment", experiment="fig6_top"):
                events_mod.event("task_retry", task="bzip2/plain", attempt=1)
                events_mod.emit_task("bzip2/plain", 1.25, 1, "ok")
            path = events_mod.finish_run("ok")
        assert path == tmp_path / "run-test.jsonl"
        assert validate_log(path) == 7
        events = read_events(path)
        kinds = [e["kind"] for e in events]
        assert kinds == ["run_begin", "span_begin", "event", "task",
                         "span_end", "metrics", "run_end"]
        assert events[0]["argv"] == ["experiment", "fig6_top"]
        assert events[3]["seconds"] == 1.25
        assert events[4]["ok"] is True
        assert events[-1]["status"] == "ok"
        assert final_metrics(events)["sim.instructions"]["value"] == 42

    def test_seq_and_t_are_monotonic(self, tmp_path):
        with enabled_scope(True):
            events_mod.start_run(log_dir=tmp_path)
            for i in range(5):
                events_mod.event(f"e{i}")
            path = events_mod.finish_run()
        events = read_events(path)
        assert [e["seq"] for e in events] == list(range(len(events)))
        ts = [e["t"] for e in events]
        assert ts == sorted(ts)

    def _write_log(self, tmp_path, records):
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        return path

    def _record(self, seq, kind, **fields):
        base = {"schema": 1, "run": "r", "seq": seq, "t": float(seq),
                "kind": kind}
        base.update(fields)
        return base

    def test_validate_rejects_seq_gap(self, tmp_path):
        path = self._write_log(tmp_path, [
            self._record(0, "run_begin", argv=[]),
            self._record(2, "run_end", status="ok"),
        ])
        with pytest.raises(TelemetryError, match="seq"):
            validate_log(path)

    def test_validate_rejects_unbalanced_spans(self, tmp_path):
        path = self._write_log(tmp_path, [
            self._record(0, "run_begin", argv=[]),
            self._record(1, "span_begin", name="outer"),
            self._record(2, "span_end", name="inner", seconds=0.1),
        ])
        with pytest.raises(TelemetryError, match="innermost"):
            validate_log(path)
        path = self._write_log(tmp_path, [
            self._record(0, "run_begin", argv=[]),
            self._record(1, "span_begin", name="outer"),
        ])
        with pytest.raises(TelemetryError, match="unclosed"):
            validate_log(path)

    def test_validate_rejects_bad_envelope_and_kind(self, tmp_path):
        path = self._write_log(tmp_path, [
            self._record(0, "run_begin", argv=[]),
            {"schema": 1, "run": "r", "seq": 1, "kind": "event", "name": "x"},
        ])
        with pytest.raises(TelemetryError, match="missing envelope key"):
            validate_log(path)
        path = self._write_log(tmp_path, [
            self._record(0, "run_begin", argv=[]),
            self._record(1, "warp_drive"),
        ])
        with pytest.raises(TelemetryError, match="unknown event kind"):
            validate_log(path)
        path = self._write_log(tmp_path, [
            self._record(0, "run_begin", argv=[]),
            self._record(1, "task", label="x"),
        ])
        with pytest.raises(TelemetryError, match="missing field"):
            validate_log(path)

    def test_validate_rejects_missing_run_begin_and_empty(self, tmp_path):
        path = self._write_log(tmp_path, [
            self._record(0, "event", name="x"),
        ])
        with pytest.raises(TelemetryError, match="run_begin"):
            validate_log(path)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(TelemetryError, match="empty"):
            validate_log(empty)


# ----------------------------------------------------------------------
# Instrumentation determinism
# ----------------------------------------------------------------------
class TestInstrumentation:
    def _instrumented_run(self):
        registry_mod.get_registry().reset()
        with enabled_scope(True):
            machine = attach_mfi(build_loop_program(iterations=8),
                                 "dise3").make_machine()
            machine.run(max_steps=10_000)
            machine.result()
        return registry_mod.get_registry().snapshot()

    def test_engine_and_sim_metrics_are_recorded(self):
        snap = self._instrumented_run()
        assert snap["sim.instructions"]["value"] > 0
        assert snap["sim.expansions"]["value"] > 0
        assert snap["sim.mem.loads"]["value"] > 0
        assert snap["sim.mem.stores"]["value"] > 0
        assert snap["engine.replacement_length"]["count"] == \
            snap["sim.expansions"]["value"]
        production_hits = sum(
            entry["value"] for name, entry in snap.items()
            if name.startswith("engine.production.")
        )
        assert production_hits == snap["sim.expansions"]["value"]
        assert snap["engine.pt_occupancy"]["value"] > 0

    def test_result_does_not_double_count(self):
        registry_mod.get_registry().reset()
        with enabled_scope(True):
            machine = attach_mfi(build_loop_program(iterations=8),
                                 "dise3").make_machine()
            machine.run(max_steps=10_000)
            machine.result()
            first = registry_mod.snapshot()["sim.instructions"]["value"]
            machine.result()
            second = registry_mod.snapshot()["sim.instructions"]["value"]
        assert first == second

    def test_identical_runs_yield_identical_snapshots(self):
        assert self._instrumented_run() == self._instrumented_run()


# ----------------------------------------------------------------------
# TaskFailure timing fields
# ----------------------------------------------------------------------
class TestTaskFailure:
    def test_details_carry_elapsed_and_attempt_times(self):
        task = TraceTask("bzip2", 1.0, "plain")
        failure = TaskFailure(task, TaskError("boom", attempts=2), 2,
                              elapsed=3.5, attempt_times=(100.0, 102.5))
        details = failure.details()
        assert details["elapsed"] == 3.5
        assert details["attempt_times"] == [100.0, 102.5]
        assert details["attempts"] == 2
        json.dumps(details)  # report-embeddable

    def test_timing_fields_default_for_legacy_construction(self):
        task = TraceTask("bzip2", 1.0, "plain")
        failure = TaskFailure(task, TaskError("boom"), 1)
        assert failure.elapsed == 0.0
        assert failure.attempt_times == ()
        assert failure.details()["attempt_times"] == []


# ----------------------------------------------------------------------
# The profiling CLI, end to end
# ----------------------------------------------------------------------
class TestTelemetryCli:
    def test_experiment_run_then_summary_top_validate_diff(
            self, tmp_path, monkeypatch, capsys):
        from repro.tools.cli import main as cli_main

        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "logs"))
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        with enabled_scope(True):
            assert cli_main(["experiment", "fig6_top", "--benchmarks",
                             "bzip2", "--scale", "0.02"]) == 0
        capsys.readouterr()
        logs = sorted((tmp_path / "logs").glob("run-*.jsonl"))
        assert len(logs) == 1
        validate_log(logs[0])

        assert cli_main(["telemetry", "validate", str(logs[0])]) == 0
        assert "schema OK" in capsys.readouterr().out

        # A directory picks the newest run; the summary must report the
        # acceptance trio: expansion frequency, cache hit rates, and
        # per-task/phase timings.
        assert cli_main(["telemetry", "summary",
                         str(tmp_path / "logs")]) == 0
        out = capsys.readouterr().out
        assert "frequency" in out
        assert "hit" in out
        assert "Phases" in out

        assert cli_main(["telemetry", "top", str(logs[0]), "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert "opcodes" in out and "productions" in out

        assert cli_main(["telemetry", "diff", str(logs[0]),
                         str(logs[0])]) == 0
        capsys.readouterr()

    def test_validate_flags_malformed_log(self, tmp_path, capsys):
        from repro.tools.cli import main as cli_main

        bad = tmp_path / "run-bad.jsonl"
        bad.write_text('{"schema": 1, "run": "r", "seq": 0, "t": 0.0, '
                       '"kind": "event", "name": "x"}\n')
        assert cli_main(["telemetry", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err


# ----------------------------------------------------------------------
# get_logger
# ----------------------------------------------------------------------
class TestGetLogger:
    @pytest.fixture(autouse=True)
    def _fresh_logging(self, monkeypatch):
        reset_for_tests()
        yield
        reset_for_tests()

    def test_namespaced_under_repro(self):
        assert get_logger("harness.parallel").name == "repro.harness.parallel"
        assert get_logger("repro.isa.build").name == "repro.isa.build"

    def test_default_level_is_warning(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
        get_logger("x")
        assert logging.getLogger("repro").level == logging.WARNING

    def test_honors_repro_log_level(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        get_logger("x")
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_single_handler_when_app_has_none(self, monkeypatch):
        # Simulate an unconfigured host application (pytest normally owns
        # root handlers, which suppresses our stderr handler by design).
        monkeypatch.setattr(logging.getLogger(), "handlers", [])
        get_logger("a")
        get_logger("b.c")
        assert len(logging.getLogger("repro").handlers) == 1

    def test_defers_to_app_configured_logging(self):
        root_handlers = list(logging.getLogger().handlers)
        assert root_handlers, "pytest should own root handlers here"
        get_logger("a")
        assert logging.getLogger("repro").handlers == []
        assert logging.getLogger().handlers == root_handlers
