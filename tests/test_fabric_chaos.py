"""Chaos harness: every fabric recovery path must converge byte-for-byte
to the serial-oracle report.

Each test tortures a real (miniature) campaign — worker kills, hangs past
the watchdog, corrupted artifacts and checkpoints, duplicate delivery,
interrupted runs — and asserts the final report is *bit-identical* to an
undisturbed serial run.  Reports carry no timestamps and are built from
sorted result tables, so any divergence is a real determinism bug.
"""

import json

import pytest

from repro.fabric import ArtifactStore, ChaosPlan, bitflip_file, truncate_file
from repro.faults.campaign import (
    CampaignConfig,
    CampaignInterrupted,
    run_campaign,
)
from repro.verify.campaign import VerifyConfig, run_verification

FAULTS = CampaignConfig(seed=11, faults=6, benchmarks=("gzip",),
                        scale=0.03, checkpoint_every=2)
VERIFY = VerifyConfig(benchmarks=("gzip",), scale=0.02,
                      oracles=("roundtrip", "acf_transparency"),
                      checkpoint_every=1)


def _bytes(report):
    return json.dumps(report, sort_keys=True).encode()


@pytest.fixture(scope="module")
def faults_oracle():
    """The undisturbed serial faults report."""
    return run_campaign(FAULTS)


@pytest.fixture(scope="module")
def verify_oracle():
    """The undisturbed serial verify report."""
    return run_verification(VERIFY)


# ----------------------------------------------------------------------
# Worker kills and hangs
# ----------------------------------------------------------------------
class TestCrashConvergence:
    def test_injected_kill_retries_to_oracle(self, faults_oracle):
        # Serial in-parent execution: the kill surfaces as a
        # WorkerCrashError (never a SIGKILL of the driver) and the retry
        # recomputes the genuine record.
        chaos = ChaosPlan(kills=(("f0002", 1), ("f0004", 1)))
        report = run_campaign(
            FAULTS,
            fabric_options={"chaos": chaos, "retries": 1, "backoff": 0.0},
        )
        assert _bytes(report) == _bytes(faults_oracle)

    def test_kill_under_real_pool_degrades_to_oracle(self, verify_oracle):
        # A genuine SIGKILL in a worker breaks the process pool; the
        # supervisor opens the circuit and the engine completes serially
        # in the parent — where the retried injection raises instead.
        chaos = ChaosPlan(kills=(("gzip:roundtrip", 1),))
        report = run_verification(
            VERIFY, jobs=2,
            fabric_options={"chaos": chaos, "retries": 1, "backoff": 0.0},
        )
        assert _bytes(report) == _bytes(verify_oracle)

    def test_hang_past_watchdog_recovers_to_oracle(self, verify_oracle):
        # The hung attempt is timed out by the supervisor; the retry (a
        # different attempt number) computes the genuine result.
        chaos = ChaosPlan(hangs=(("gzip:roundtrip", 1),),
                          hang_seconds=12.0)
        report = run_verification(
            VERIFY, jobs=2,
            fabric_options={"chaos": chaos, "retries": 1, "backoff": 0.0,
                            "task_timeout": 6.0},
        )
        assert _bytes(report) == _bytes(verify_oracle)

    def test_exhausted_kills_degrade_serially_to_oracle(self, faults_oracle):
        # Kill every attempt the pool budget allows: the task degrades to
        # serial in-parent execution and still completes.
        chaos = ChaosPlan(kills=(("f0001", 1), ("f0001", 2)))
        report = run_campaign(
            FAULTS,
            fabric_options={"chaos": chaos, "retries": 3, "backoff": 0.0},
        )
        assert _bytes(report) == _bytes(faults_oracle)


# ----------------------------------------------------------------------
# Duplicate delivery
# ----------------------------------------------------------------------
class TestDuplicateDelivery:
    def test_duplicates_coalesce_to_oracle(self, faults_oracle):
        chaos = ChaosPlan(duplicates=("f0000", "f0003"))
        report = run_campaign(FAULTS, fabric_options={"chaos": chaos})
        assert _bytes(report) == _bytes(faults_oracle)


# ----------------------------------------------------------------------
# Corrupted checkpoints: quarantine and clean restart
# ----------------------------------------------------------------------
class TestCheckpointCorruption:
    def _interrupt(self, config, path, **kwargs):
        with pytest.raises(CampaignInterrupted):
            run_campaign(config, checkpoint_path=path, stop_after=3,
                         **kwargs)

    def test_truncated_faults_checkpoint_restarts_cleanly(
            self, tmp_path, faults_oracle):
        path = str(tmp_path / "ck.json")
        self._interrupt(FAULTS, path)
        truncate_file(path, keep=25)
        report = run_campaign(FAULTS, checkpoint_path=path, resume=True)
        assert (tmp_path / "ck.json.quarantined").exists()
        assert _bytes(report) == _bytes(faults_oracle)

    def test_bitflipped_faults_checkpoint_restarts_cleanly(
            self, tmp_path, faults_oracle):
        path = str(tmp_path / "ck.json")
        self._interrupt(FAULTS, path)
        bitflip_file(path, bit=900)
        report = run_campaign(FAULTS, checkpoint_path=path, resume=True)
        assert (tmp_path / "ck.json.quarantined").exists()
        assert _bytes(report) == _bytes(faults_oracle)

    def test_corrupt_verify_checkpoint_restarts_cleanly(
            self, tmp_path, verify_oracle):
        path = str(tmp_path / "ck.json")
        run_verification(VERIFY, checkpoint_path=path)
        bitflip_file(path, bit=333)
        report = run_verification(VERIFY, checkpoint_path=path,
                                  resume=True)
        assert (tmp_path / "ck.json.quarantined").exists()
        assert _bytes(report) == _bytes(verify_oracle)


# ----------------------------------------------------------------------
# Corrupted artifacts: quarantine and recompute
# ----------------------------------------------------------------------
class TestArtifactCorruption:
    def test_corrupt_store_artifacts_recomputed_to_oracle(
            self, tmp_path, faults_oracle):
        store = ArtifactStore(tmp_path / "store")
        first = run_campaign(FAULTS, fabric_options={"store": store})
        assert _bytes(first) == _bytes(faults_oracle)
        artifacts = sorted((store.root / "artifacts").iterdir())
        assert len(artifacts) == FAULTS.faults
        truncate_file(str(artifacts[0]), keep=8)
        bitflip_file(str(artifacts[1]), bit=77)
        report = run_campaign(FAULTS, fabric_options={"store": store})
        assert _bytes(report) == _bytes(faults_oracle)
        assert store.stats()["quarantined"]["entries"] == 2

    def test_cross_campaign_dedupe_preserves_bytes(self, tmp_path,
                                                   verify_oracle):
        store = ArtifactStore(tmp_path / "store")
        run_verification(VERIFY, fabric_options={"store": store})
        served = run_verification(VERIFY, fabric_options={"store": store})
        assert _bytes(served) == _bytes(verify_oracle)


# ----------------------------------------------------------------------
# Interrupted chaos runs resume to the same bytes
# ----------------------------------------------------------------------
class TestInterruptedChaosResume:
    def test_interrupt_then_resume_under_chaos(self, tmp_path,
                                               faults_oracle):
        path = str(tmp_path / "ck.json")
        chaos = ChaosPlan(kills=(("f0005", 1),),
                          duplicates=("f0002",))
        with pytest.raises(CampaignInterrupted):
            run_campaign(
                FAULTS, checkpoint_path=path, stop_after=3,
                fabric_options={"chaos": chaos, "retries": 1,
                                "backoff": 0.0},
            )
        report = run_campaign(
            FAULTS, checkpoint_path=path, resume=True,
            fabric_options={"chaos": chaos, "retries": 1, "backoff": 0.0},
        )
        assert _bytes(report) == _bytes(faults_oracle)

    def test_pool_checkpoint_resumes_serially(self, tmp_path,
                                              verify_oracle):
        # Executor-kind independence: checkpoint under a pool, resume
        # serially, identical bytes.
        path = str(tmp_path / "ck.json")
        run_verification(VERIFY, jobs=2, checkpoint_path=path)
        report = run_verification(VERIFY, jobs=1, checkpoint_path=path,
                                  resume=True)
        assert _bytes(report) == _bytes(verify_oracle)
