"""Causal tracing, hot-path profiler, timeline export, critical path.

Covers the tentpole guarantees of the tracing layer:

* trace contexts propagate across fabric/harness worker processes, so a
  parallel campaign yields ONE trace tree under a single trace id;
* worker crashes leave well-formed *truncated* spans, never corrupt logs;
* ``chrome_trace`` emits valid Chrome trace-event JSON (Perfetto-loadable);
* ``critical_path`` tiles the run, so chain time matches wall-clock;
* the hot-path profiler attributes retirements deterministically on the
  translated, interpretive, and batch tiers;
* the telemetry CLI resolves concurrent-process run logs by header and
  refuses to diff across schema versions.
"""

import json
import os

import pytest

from conftest import build_loop_program
from repro.acf.mfi import attach_mfi, ensure_error_stub
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.harness.parallel import FUNCTIONAL_DISE
from repro.sim.batch import BatchMachine
from repro.telemetry import events as events_mod
from repro.telemetry import profile as profile_mod
from repro.telemetry import registry as registry_mod
from repro.telemetry import tracing
from repro.telemetry import (
    TelemetryError,
    enabled_scope,
    read_events,
    validate_log,
)
from repro.telemetry.export import (
    chrome_trace,
    collect_spans,
    critical_path,
    render_critical_path,
    trace_ids,
    validate_chrome_trace,
)
from repro.tools.cli import _resolve_run_log, main as cli_main


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Each test starts with every knob off and no leftover context."""
    registry_mod.configure(False)
    registry_mod.get_registry().reset()
    events_mod._CURRENT = events_mod._INERT_RUN
    tracing.configure(False)
    tracing.reset_for_tests()
    profile_mod.configure(False)
    yield
    registry_mod.configure(None)
    registry_mod.get_registry().reset()
    events_mod._CURRENT = events_mod._INERT_RUN
    tracing.configure(None)
    tracing.reset_for_tests()
    profile_mod.configure(None)


# ----------------------------------------------------------------------
# Knobs
# ----------------------------------------------------------------------
class TestKnobs:
    @pytest.mark.parametrize("raw,expect", [
        ("1", True), ("on", True), ("TRUE", True), ("yes", True),
        ("", False), ("0", False), ("off", False),
    ])
    def test_trace_env_spellings(self, monkeypatch, raw, expect):
        monkeypatch.setenv("REPRO_TRACE", raw)
        assert tracing.configure(None) is expect
        monkeypatch.setenv("REPRO_TRACE_PROFILE", raw)
        assert profile_mod.configure(None) is expect

    def test_scopes_restore_previous_state(self):
        assert not tracing.enabled() and not profile_mod.enabled()
        with tracing.trace_scope(True):
            assert tracing.enabled()
        with profile_mod.profile_scope(True):
            assert profile_mod.enabled()
        assert not tracing.enabled() and not profile_mod.enabled()

    def test_context_is_none_when_off_or_idle(self):
        assert tracing.current_context() is None
        with tracing.trace_scope(True):
            assert tracing.current_context() is None  # no span open


# ----------------------------------------------------------------------
# Local span identity
# ----------------------------------------------------------------------
class TestLocalSpans:
    def test_nested_spans_carry_ids_and_validate(self, tmp_path):
        with enabled_scope(True), tracing.trace_scope(True):
            events_mod.start_run(log_dir=tmp_path, run_id="run-ids")
            with events_mod.span("outer"):
                with events_mod.span("inner"):
                    pass
            path = events_mod.finish_run("ok")
        assert validate_log(path) == 7
        events = read_events(path)
        begins = {e["name"]: e for e in events if e["kind"] == "span_begin"}
        assert begins["outer"]["trace_id"] == "run-ids"
        assert "parent_id" not in begins["outer"]
        assert begins["inner"]["trace_id"] == "run-ids"
        assert begins["inner"]["parent_id"] == begins["outer"]["span_id"]
        assert trace_ids(events) == ["run-ids"]
        # span_end events echo the ids so pairs match in any order.
        ends = {e["name"]: e for e in events if e["kind"] == "span_end"}
        assert ends["inner"]["span_id"] == begins["inner"]["span_id"]

    def test_tracing_off_emits_v1_style_spans(self, tmp_path):
        with enabled_scope(True):
            events_mod.start_run(log_dir=tmp_path, run_id="run-v1")
            with events_mod.span("outer"):
                pass
            path = events_mod.finish_run("ok")
        events = read_events(path)
        begin = next(e for e in events if e["kind"] == "span_begin")
        assert "span_id" not in begin and "trace_id" not in begin
        assert validate_log(path) == 5

    def test_schema1_log_still_validates(self, tmp_path):
        path = tmp_path / "run-old.jsonl"
        rows = [
            {"schema": 1, "run": "run-old", "seq": 0, "t": 0.0,
             "kind": "run_begin", "argv": ["repro"]},
            {"schema": 1, "run": "run-old", "seq": 1, "t": 0.1,
             "kind": "span_begin", "name": "phase"},
            {"schema": 1, "run": "run-old", "seq": 2, "t": 0.4,
             "kind": "span_end", "name": "phase", "seconds": 0.3,
             "ok": True},
            {"schema": 1, "run": "run-old", "seq": 3, "t": 0.5,
             "kind": "run_end", "status": "ok"},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        assert validate_log(path) == 4


# ----------------------------------------------------------------------
# Remote sessions and the result envelope
# ----------------------------------------------------------------------
class TestRemoteSpans:
    def test_remote_span_records_and_envelope_round_trip(self):
        with tracing.trace_scope(True):
            ctx = {"trace_id": "run-r", "span_id": "100.1"}
            with tracing.remote_session(ctx) as session:
                assert tracing.remote_active()
                with tracing.remote_span("fabric.task", task="t001"):
                    with tracing.remote_span("harness.task"):
                        pass
                envelope = tracing.wrap_result({"x": 1}, session,
                                               {"c": {"value": 2}})
        assert tracing.is_envelope(envelope)
        assert not tracing.is_envelope({"x": 1})
        result, spans, metrics = tracing.unwrap(envelope)
        assert result == {"x": 1}
        assert metrics == {"c": {"value": 2}}
        assert [s["name"] for s in spans] == ["harness.task", "fabric.task"]
        outer = spans[1]
        inner = spans[0]
        assert outer["trace_id"] == "run-r"
        assert outer["parent_id"] == "100.1"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["pid"] == os.getpid()
        assert outer["task"] == "t001"
        assert outer["ok"] is True

    def test_remote_span_records_on_exception(self):
        with tracing.trace_scope(True):
            ctx = {"trace_id": "run-r", "span_id": "100.1"}
            with tracing.remote_session(ctx) as session:
                with pytest.raises(ValueError):
                    with tracing.remote_span("fabric.task"):
                        raise ValueError("boom")
        assert session.records[0]["ok"] is False

    def test_events_span_routes_to_remote_session(self, tmp_path):
        # Instrumented library code calls events.span(); inside a worker
        # (no event log) that must land in the remote buffer.
        with tracing.trace_scope(True):
            ctx = {"trace_id": "run-r", "span_id": "100.1"}
            with tracing.remote_session(ctx) as session:
                with events_mod.span("campaign.prepare_bench", bench="gzip"):
                    pass
        assert session.records[0]["name"] == "campaign.prepare_bench"
        assert session.records[0]["bench"] == "gzip"

    def test_emit_remote_spans_merges_validly(self, tmp_path):
        with tracing.trace_scope(True):
            ctx = {"trace_id": "run-m", "span_id": "1.1"}
            with tracing.remote_session(ctx) as session:
                with tracing.remote_span("fabric.task", task="t0"):
                    pass
        with enabled_scope(True), tracing.trace_scope(True):
            events_mod.start_run(log_dir=tmp_path, run_id="run-m")
            events_mod.emit_remote_spans(session.records)
            path = events_mod.finish_run("ok")
        assert validate_log(path) == 5
        events = read_events(path)
        begin = next(e for e in events if e["kind"] == "span_begin")
        assert begin["remote"] is True
        assert begin["pid"] == os.getpid()
        assert begin["parent_id"] == "1.1"
        spans = collect_spans(events)
        assert len(spans) == 1 and not spans[0].truncated


# ----------------------------------------------------------------------
# Truncated spans (worker crash mid-span)
# ----------------------------------------------------------------------
class TestTruncatedSpans:
    def _crashed_run(self, tmp_path):
        with enabled_scope(True), tracing.trace_scope(True):
            events_mod.start_run(log_dir=tmp_path, run_id="run-crash")
            with events_mod.span("fabric.run", driver="faults"):
                events_mod.emit_truncated_span(
                    "fabric.task", None, task="f0002", status="gave_up")
            return events_mod.finish_run("ok")

    def test_validate_log_accepts_spanend_less_record(self, tmp_path):
        path = self._crashed_run(tmp_path)
        assert validate_log(path) == 6
        events = read_events(path)
        begin = next(e for e in events if e["kind"] == "span_begin"
                     and e["name"] == "fabric.task")
        assert begin["truncated"] is True
        assert begin["parent_id"]  # child of fabric.run
        assert sum(1 for e in events if e["kind"] == "span_end") == 1

    def test_critical_path_reports_truncation_not_corruption(self, tmp_path):
        path = self._crashed_run(tmp_path)
        analysis = critical_path(read_events(path))
        assert [s.name for s in analysis["truncated"]] == ["fabric.task"]
        report = render_critical_path("run-crash", analysis)
        assert "truncated" in report
        # The chrome export places it too, flagged.
        doc = chrome_trace(read_events(path))
        validate_chrome_trace(doc)
        entry = next(e for e in doc["traceEvents"]
                     if e["name"] == "fabric.task")
        assert entry["args"]["truncated"] is True

    def test_truncated_emission_needs_tracing(self, tmp_path):
        # With tracing off an id-less unclosed span_begin would poison the
        # log, so emit_truncated_span must refuse to emit one.
        with enabled_scope(True):
            events_mod.start_run(log_dir=tmp_path, run_id="run-off")
            assert events_mod.emit_truncated_span("fabric.task", None) is None
            path = events_mod.finish_run("ok")
        assert validate_log(path) == 3


# ----------------------------------------------------------------------
# Cross-process: one campaign, one trace tree
# ----------------------------------------------------------------------
FAULTS = CampaignConfig(seed=11, faults=4, benchmarks=("gzip",),
                        scale=0.03, checkpoint_every=2)


def _bytes(report):
    return json.dumps(report, sort_keys=True).encode()


class TestCrossProcessTrace:
    def test_pool_campaign_yields_single_trace_tree(self, tmp_path):
        oracle = run_campaign(FAULTS)
        with enabled_scope(True), tracing.trace_scope(True):
            registry_mod.get_registry().reset()
            events_mod.start_run(log_dir=tmp_path, run_id="run-fab")
            report = run_campaign(FAULTS, jobs=2)
            path = events_mod.finish_run("ok")
        # Tracing never perturbs results: the envelope is unwrapped before
        # any store/checkpoint/report path.
        assert _bytes(report) == _bytes(oracle)
        assert validate_log(path) > 0
        events = read_events(path)
        # ONE trace id — the run id — across parent and worker processes.
        assert trace_ids(events) == ["run-fab"]
        remote = [e for e in events
                  if e["kind"] == "span_begin" and e.get("remote")]
        worker_pids = {e["pid"] for e in remote}
        assert worker_pids and os.getpid() not in worker_pids
        assert {e["name"] for e in remote} >= {"fabric.task"}
        # Every span parents into the same tree: no orphan chains.
        spans = collect_spans(events)
        known = {s.span_id for s in spans if s.span_id is not None}
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in known
        # The exported timeline is valid and shows per-worker tracks.
        doc = chrome_trace(events)
        validate_chrome_trace(doc)
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "driver" in names
        assert any(n.startswith("worker ") for n in names)
        # And the critical path tiles the run: chain == wall within 10%.
        analysis = critical_path(events)
        wall = analysis["wall_seconds"]
        assert wall > 0
        assert abs(analysis["chain_seconds"] - wall) <= 0.1 * wall


# ----------------------------------------------------------------------
# Critical path on synthetic trees
# ----------------------------------------------------------------------
def _ev(seq, kind, t, **fields):
    return dict({"schema": 2, "run": "run-s", "seq": seq, "t": t,
                 "kind": kind}, **fields)


class TestCriticalPath:
    def test_chain_tiles_wall_clock_with_slack(self):
        events = [
            _ev(0, "run_begin", 0.0, argv=["repro"]),
            _ev(1, "span_begin", 0.0, name="campaign", trace_id="run-s",
                span_id="1.1"),
            # Two children; the later-ending one gates.
            _ev(2, "span_begin", 0.1, name="task_a", trace_id="run-s",
                span_id="1.2", parent_id="1.1"),
            _ev(3, "span_end", 0.6, name="task_a", trace_id="run-s",
                span_id="1.2", seconds=0.5, ok=True),
            _ev(4, "span_begin", 0.2, name="task_b", trace_id="run-s",
                span_id="1.3", parent_id="1.1"),
            _ev(5, "span_end", 1.0, name="task_b", trace_id="run-s",
                span_id="1.3", seconds=0.8, ok=True),
            _ev(6, "span_end", 1.2, name="campaign", trace_id="run-s",
                span_id="1.1", seconds=1.2, ok=True),
            _ev(7, "run_end", 1.3, status="ok"),
        ]
        analysis = critical_path(events)
        assert analysis["wall_seconds"] == pytest.approx(1.3)
        assert analysis["chain_seconds"] == pytest.approx(1.3)
        assert analysis["coverage"] == pytest.approx(1.0)
        chain = [s.name for s in analysis["segments"] if s.seconds > 1e-6]
        # task_b (ends later) gates; task_a only covers the early gap.
        assert "task_b" in chain and "campaign" in chain
        gating = next(s for s in analysis["segments"] if s.name == "task_b")
        assert gating.slack is not None and gating.slack >= 0

    def test_empty_log_raises(self):
        with pytest.raises(TelemetryError):
            critical_path([])


# ----------------------------------------------------------------------
# Hot-path profiler
# ----------------------------------------------------------------------
def _loop_machine(**kwargs):
    installation = attach_mfi(build_loop_program(iterations=40), "dise3")
    return installation.make_machine(FUNCTIONAL_DISE, **kwargs)


class TestProfiler:
    def test_off_by_default_no_state(self):
        machine = _loop_machine()
        assert machine._profile is None

    def test_translated_tier_attributes_blocks_and_triggers(self):
        with profile_mod.profile_scope(True):
            machine = _loop_machine()
            machine.run()
        profile = machine._profile
        assert profile["tier"] == "translated"
        assert profile["block"] and profile["trigger"]
        assert sum(profile["block"].values()) > 0
        lines = profile_mod.collapsed_from_machine(machine)
        assert any(line.startswith("sim;translated;sb_0x") for line in lines)
        assert any(line.startswith("dise;trigger;0x") for line in lines)
        assert any(line.startswith("dise;production;seq") for line in lines)

    def test_ranking_deterministic_across_same_seed_runs(self):
        outputs = []
        for _ in range(2):
            with profile_mod.profile_scope(True):
                machine = _loop_machine()
                machine.run()
            outputs.append(profile_mod.collapsed_from_machine(machine))
        assert outputs[0] == outputs[1] and outputs[0]

    def test_interpretive_tier_publishes_registry_counters(self):
        # On the interpretive fast tier (requested explicitly — telemetry
        # no longer forces a translated machine off its tier) the profiler
        # must attribute to dynamic leaders and publish profile.* counters
        # so worker deltas merge like any other metric.
        with enabled_scope(True), profile_mod.profile_scope(True):
            registry_mod.get_registry().reset()
            machine = _loop_machine(dispatch="fast")
            assert machine._profile["tier"] == "fast"
            machine.run()
            snap = registry_mod.snapshot()
        blocks = [n for n in snap if n.startswith("profile.block.fast.")]
        assert blocks
        assert any(n.startswith("profile.trigger.") for n in snap)
        top = profile_mod.top_blocks(snap, n=3)
        assert top and top[0][0] == "fast"
        # Repeated publishes are delta-safe: a second result() call adds 0.
        with enabled_scope(True), profile_mod.profile_scope(True):
            machine.result()
            again = registry_mod.snapshot()
        assert again[blocks[0]] == snap[blocks[0]]

    def test_batch_lanes_attribute_compiled_calls(self):
        installation = attach_mfi(build_loop_program(iterations=60), "dise3")
        with profile_mod.profile_scope(True):
            bm = BatchMachine()
            for _ in range(2):
                machine = installation.make_machine(
                    FUNCTIONAL_DISE, record_trace=False,
                    dispatch="translated")
                bm.add_lane(machine)
            bm.run()
        assert bm._profile["tier"] == "batch"
        assert bm._profile["block"]
        assert sum(bm._profile["block"].values()) > 0


# ----------------------------------------------------------------------
# CLI satellites: run-log selection and schema-mismatch refusal
# ----------------------------------------------------------------------
def _write_log(path, run_id, t0, schema=2):
    rows = [
        {"schema": schema, "run": run_id, "seq": 0, "t": t0,
         "kind": "run_begin", "argv": ["repro"]},
        {"schema": schema, "run": run_id, "seq": 1, "t": t0 + 0.2,
         "kind": "metrics", "metrics": {"sim.instructions":
                                        {"type": "counter", "value": 7}}},
        {"schema": schema, "run": run_id, "seq": 2, "t": t0 + 0.3,
         "kind": "run_end", "status": "ok"},
    ]
    path.write_text("".join(json.dumps(r) + "\n" for r in rows))
    return path


class TestCliRunSelection:
    def test_picks_by_header_not_name_or_mtime(self, tmp_path):
        # run-zzz sorts (and is written) last but *started* first; the
        # resolver must pick run-aaa, whose header is newest.
        _write_log(tmp_path / "run-aaa.jsonl", "run-aaa", t0=100.0)
        _write_log(tmp_path / "run-zzz.jsonl", "run-zzz", t0=50.0)
        os.utime(tmp_path / "run-aaa.jsonl", (1, 1))
        assert _resolve_run_log(tmp_path).name == "run-aaa.jsonl"

    def test_warns_on_header_timestamp_tie(self, tmp_path, capsys):
        _write_log(tmp_path / "run-a.jsonl", "run-a", t0=10.0)
        _write_log(tmp_path / "run-b.jsonl", "run-b", t0=10.0)
        picked = _resolve_run_log(tmp_path)
        err = capsys.readouterr().err
        assert "warning" in err and "same timestamp" in err
        assert picked.name in ("run-a.jsonl", "run-b.jsonl")

    def test_skips_headerless_files(self, tmp_path):
        (tmp_path / "run-junk.jsonl").write_text("not json\n")
        _write_log(tmp_path / "run-ok.jsonl", "run-ok", t0=5.0)
        assert _resolve_run_log(tmp_path).name == "run-ok.jsonl"

    def test_errors_when_no_readable_header(self, tmp_path):
        (tmp_path / "run-junk.jsonl").write_text("not json\n")
        with pytest.raises(SystemExit, match="readable"):
            _resolve_run_log(tmp_path)


class TestCliSchemaMismatch:
    def test_diff_refuses_across_schemas(self, tmp_path, capsys):
        a = _write_log(tmp_path / "run-a.jsonl", "run-a", 1.0, schema=1)
        b = _write_log(tmp_path / "run-b.jsonl", "run-b", 2.0, schema=2)
        with pytest.raises(SystemExit, match="schema"):
            cli_main(["telemetry", "diff", str(a), str(b)])

    def test_escape_hatch_allows_it(self, tmp_path, capsys):
        a = _write_log(tmp_path / "run-a.jsonl", "run-a", 1.0, schema=1)
        b = _write_log(tmp_path / "run-b.jsonl", "run-b", 2.0, schema=2)
        assert cli_main(["telemetry", "diff", str(a), str(b),
                         "--allow-schema-mismatch"]) == 0
        assert "Telemetry diff" in capsys.readouterr().out

    def test_same_schema_unaffected(self, tmp_path, capsys):
        a = _write_log(tmp_path / "run-a.jsonl", "run-a", 1.0)
        b = _write_log(tmp_path / "run-b.jsonl", "run-b", 2.0)
        assert cli_main(["telemetry", "diff", str(a), str(b)]) == 0


# ----------------------------------------------------------------------
# CLI: trace / critical-path / profile actions
# ----------------------------------------------------------------------
class TestCliExport:
    def _traced_run(self, tmp_path):
        with enabled_scope(True), tracing.trace_scope(True):
            events_mod.start_run(log_dir=tmp_path, run_id="run-cli")
            with events_mod.span("experiment"):
                events_mod.emit_task("gzip/plain", 0.5, 1, "ok")
            return events_mod.finish_run("ok")

    def test_trace_action_writes_valid_chrome_json(self, tmp_path, capsys):
        path = self._traced_run(tmp_path)
        out = tmp_path / "chrome.json"
        assert cli_main(["telemetry", "trace", str(path),
                         "--chrome", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) > 0
        assert doc["otherData"]["run"] == "run-cli"

    def test_critical_path_action(self, tmp_path, capsys):
        path = self._traced_run(tmp_path)
        assert cli_main(["telemetry", "critical-path", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Critical path" in out and "wall-clock" in out

    def test_profile_action_renders_collapsed_stacks(self, tmp_path,
                                                     capsys):
        with enabled_scope(True), profile_mod.profile_scope(True):
            registry_mod.get_registry().reset()
            events_mod.start_run(log_dir=tmp_path, run_id="run-prof")
            machine = _loop_machine()
            machine.run()
            path = events_mod.finish_run("ok")
        assert cli_main(["telemetry", "profile", str(path)]) == 0
        out = capsys.readouterr().out
        # Telemetry no longer drops the machine off the translated tier,
        # so the profile attributes to translated superblocks.
        assert "sim;translated;sb_0x" in out

    def test_profile_action_without_counters_fails(self, tmp_path, capsys):
        path = self._traced_run(tmp_path)
        assert cli_main(["telemetry", "profile", str(path)]) == 1
        assert "REPRO_TRACE_PROFILE" in capsys.readouterr().err
