"""Unit tests for the DISE controller: virtualization, scoping, state."""

import pytest

from repro.core.config import DiseConfig
from repro.core.controller import (
    DiseController,
    combine_production_sets,
)
from repro.core.pattern import match_loads, match_opcode, match_stores
from repro.core.production import ProductionError, ProductionSet
from repro.core.registers import DiseRegisterFile
from repro.core.replacement import identity_replacement
from repro.isa.build import codeword, ldq, stq
from repro.isa.opcodes import Opcode
from repro.isa.registers import dise_reg


def loads_set(name="loads", scope="user"):
    pset = ProductionSet(name, scope=scope)
    pset.define(match_loads(), identity_replacement())
    return pset


def stores_set(name="stores", scope="user"):
    pset = ProductionSet(name, scope=scope)
    pset.define(match_stores(), identity_replacement())
    return pset


def tagged_set(name="aware", tags=(0, 1)):
    pset = ProductionSet(name)
    for tag in tags:
        pset.add_replacement(tag, identity_replacement())
    pset.add_production(match_opcode(Opcode.RES0), tagged=True)
    return pset


class TestCombine:
    def test_empty(self):
        assert combine_production_sets([]) is None

    def test_direct_sets_remapped_above_tags(self):
        combined = combine_production_sets([loads_set(), tagged_set()])
        # Tag ids 0 and 1 belong to the aware set; the direct id moved up.
        assert set(combined.replacements) == {0, 1, 2}
        direct = [p for p in combined.productions if not p.tagged]
        assert direct[0].seq_id == 2

    def test_tag_collision_raises(self):
        with pytest.raises(ProductionError):
            combine_production_sets([tagged_set("a"), tagged_set("b")])

    def test_disjoint_tag_spaces_combine(self):
        combined = combine_production_sets(
            [tagged_set("a", tags=(0, 1)), tagged_set("b", tags=(10, 11))]
        )
        assert set(combined.replacements) == {0, 1, 10, 11}


class TestInstallation:
    def test_install_activates(self):
        ctrl = DiseController()
        ctrl.install(loads_set())
        assert ctrl.engine.match(ldq(1, 0, 2)) is not None

    def test_duplicate_install_rejected(self):
        ctrl = DiseController()
        ctrl.install(loads_set())
        with pytest.raises(ProductionError):
            ctrl.install(loads_set())

    def test_uninstall(self):
        ctrl = DiseController()
        ctrl.install(loads_set())
        ctrl.uninstall("loads")
        assert ctrl.engine.match(ldq(1, 0, 2)) is None
        assert ctrl.installed_names() == ()

    def test_deactivate_reactivate(self):
        ctrl = DiseController()
        ctrl.install(loads_set())
        ctrl.set_active("loads", False)
        assert ctrl.engine.match(ldq(1, 0, 2)) is None
        ctrl.set_active("loads", True)
        assert ctrl.engine.match(ldq(1, 0, 2)) is not None

    def test_two_acfs_active_simultaneously(self):
        ctrl = DiseController()
        ctrl.install(loads_set())
        ctrl.install(stores_set())
        assert ctrl.engine.match(ldq(1, 0, 2)) is not None
        assert ctrl.engine.match(stq(1, 0, 2)) is not None

    def test_unknown_name_errors(self):
        ctrl = DiseController()
        with pytest.raises(ProductionError):
            ctrl.uninstall("ghost")
        with pytest.raises(ProductionError):
            ctrl.set_active("ghost", True)


class TestProcessScoping:
    """Section 2.3: user-scope sets act only on their owning process."""

    def test_user_set_deactivated_on_switch(self):
        ctrl = DiseController()
        ctrl.context_switch(1)
        ctrl.install(loads_set(scope="user"))   # owned by pid 1
        assert ctrl.engine.match(ldq(1, 0, 2)) is not None
        ctrl.context_switch(2)
        assert ctrl.engine.match(ldq(1, 0, 2)) is None
        ctrl.context_switch(1)
        assert ctrl.engine.match(ldq(1, 0, 2)) is not None

    def test_kernel_set_survives_switch(self):
        ctrl = DiseController()
        ctrl.context_switch(1)
        ctrl.install(loads_set(scope="kernel"))
        ctrl.context_switch(2)
        assert ctrl.engine.match(ldq(1, 0, 2)) is not None

    def test_active_names_reflect_visibility(self):
        ctrl = DiseController()
        ctrl.context_switch(1)
        ctrl.install(loads_set(scope="user"))
        ctrl.install(stores_set(scope="kernel"))
        ctrl.context_switch(2)
        assert ctrl.active_names() == ("stores",)


class TestSavedState:
    def test_save_restore_registers_and_pc(self):
        ctrl = DiseController()
        ctrl.install(loads_set())
        regs = DiseRegisterFile()
        regs.write(dise_reg(2), 7)
        state = ctrl.save_state(regs, pc=0x400010, disepc=2)
        regs.write(dise_reg(2), 0)
        pc, disepc = ctrl.restore_state(state, regs)
        assert (pc, disepc) == (0x400010, 2)
        assert regs.read(dise_reg(2)) == 7

    def test_restore_reinstates_active_sets(self):
        ctrl = DiseController()
        ctrl.install(loads_set())
        regs = DiseRegisterFile()
        state = ctrl.save_state(regs)
        ctrl.set_active("loads", False)
        ctrl.restore_state(state, regs)
        assert ctrl.engine.match(ldq(1, 0, 2)) is not None


class TestMissCosts:
    def test_penalties(self):
        ctrl = DiseController(DiseConfig(simple_miss_cycles=30,
                                         compose_miss_cycles=150))
        assert ctrl.miss_penalty() == 30
        assert ctrl.miss_penalty(composed=True) == 150

    def test_config_sizes(self):
        config = DiseConfig()
        assert config.pt_bytes == 32 * 8
        assert config.rt_bytes == 2048 * 8

    def test_bad_placement_rejected(self):
        with pytest.raises(ValueError):
            DiseConfig(placement="sideways")


class TestDiseRegisterFile:
    def test_read_write(self):
        regs = DiseRegisterFile()
        regs.write(dise_reg(3), 0x1234)
        assert regs.read(dise_reg(3)) == 0x1234

    def test_64_bit_wrap(self):
        regs = DiseRegisterFile()
        regs.write(dise_reg(0), 1 << 70)
        assert regs.read(dise_reg(0)) == 0

    def test_rejects_user_registers(self):
        regs = DiseRegisterFile()
        with pytest.raises(ValueError):
            regs.read(5)

    def test_snapshot_restore(self):
        regs = DiseRegisterFile()
        regs.write(dise_reg(1), 42)
        snap = regs.snapshot()
        regs.write(dise_reg(1), 0)
        regs.restore(snap)
        assert regs.read(dise_reg(1)) == 42

    def test_bad_snapshot_length(self):
        with pytest.raises(ValueError):
            DiseRegisterFile().restore((1, 2, 3))
