"""Fault-injection subsystem: taxonomy, campaign driver, determinism.

The heavyweight check is the module-scoped 200-fault mini-campaign over two
synthetic benchmarks, which backs the paper's central MFI claim: every
fault that leaves the legal segment is contained by the production set,
with zero false positives on unfaulted controls.
"""

import json
import random

import pytest

from repro.errors import CampaignError, CheckpointError
from repro.faults import (
    FAULT_CLASSES,
    MFI_GUARDED_CLASSES,
    CampaignConfig,
    CampaignInterrupted,
    load_report,
    render_summary,
    run_campaign,
)
from repro.faults.campaign import save_report
from repro.faults.inject import (
    make_fault,
    mutate_image,
    profile_sites,
    replace_instruction,
    state_mutator,
)
from repro.acf.base import plain_installation
from repro.acf.mfi import ensure_error_stub
from repro.program.builder import SEGMENT_SHIFT
from repro.workloads.generator import generate_by_name

SEED = 20031
MINI = CampaignConfig(seed=SEED, faults=200, benchmarks=("bzip2", "gzip"),
                      scale=0.05)


@pytest.fixture(scope="module")
def mini_report():
    return run_campaign(MINI)


@pytest.fixture(scope="module")
def profiled():
    image = ensure_error_stub(generate_by_name("gzip", scale=0.05))
    trace = plain_installation(image).run(max_steps=2_000_000)
    return image, profile_sites(image, trace)


class TestInjection:
    def test_profile_finds_sites_of_every_kind(self, profiled):
        _, profile = profiled
        assert profile.loads and profile.stores and profile.jumps
        assert profile.mem_sites and profile.executed

    def test_profiled_bases_stay_in_data_segment(self, profiled):
        image, profile = profiled
        data_seg = image.data_base >> SEGMENT_SHIFT
        for _, _, base in profile.loads + profile.stores:
            assert base >> SEGMENT_SHIFT == data_seg

    def test_make_fault_is_deterministic(self, profiled):
        image, profile = profiled
        for fault_class in FAULT_CLASSES:
            a = make_fault(random.Random("s"), "f0", "gzip", fault_class,
                           profile, image)
            b = make_fault(random.Random("s"), "f0", "gzip", fault_class,
                           profile, image)
            assert a == b
            assert a is not None        # gzip offers every class a site

    def test_guarded_classes_always_leave_the_segment(self, profiled):
        image, profile = profiled
        rng = random.Random(99)
        for i in range(50):
            for fault_class in sorted(MFI_GUARDED_CLASSES):
                spec = make_fault(rng, f"f{i}", "gzip", fault_class,
                                  profile, image)
                assert spec.guarded
                value = spec.detail_dict()["value"]
                assert value >> SEGMENT_SHIFT not in (
                    image.text_base >> SEGMENT_SHIFT,
                    image.data_base >> SEGMENT_SHIFT,
                )

    def test_unknown_class_rejected(self, profiled):
        image, profile = profiled
        with pytest.raises(CampaignError):
            make_fault(random.Random(0), "f0", "gzip", "meteor_strike",
                       profile, image)

    def test_replace_instruction_preserves_layout(self, profiled):
        image, profile = profiled
        spec = make_fault(random.Random(1), "f0", "gzip", "corrupt_disp",
                          profile, image)
        mutated = mutate_image(spec, image)
        assert mutated is not image
        assert mutated.addresses == image.addresses
        assert mutated.sizes == image.sizes
        index = image.index_of_addr[spec.site_pc]
        assert mutated.instructions[index] != image.instructions[index]
        diffs = [i for i, (a, b) in enumerate(
            zip(mutated.instructions, image.instructions)) if a != b]
        assert diffs == [index]

    def test_bitflip_decodes_to_a_different_instruction(self, profiled):
        from repro.isa.encoding import decode, encode

        image, profile = profiled
        spec = make_fault(random.Random(2), "f0", "gzip", "bitflip",
                          profile, image)
        index = image.index_of_addr[spec.site_pc]
        original = image.instructions[index]
        flipped = decode(encode(original) ^ (1 << spec.detail_dict()["bit"]))
        assert flipped != original

    def test_state_mutators_only_for_state_classes(self, profiled):
        image, profile = profiled
        rng = random.Random(3)
        for fault_class in FAULT_CLASSES:
            spec = make_fault(rng, "f0", "gzip", fault_class, profile,
                              image)
            has_mutator = state_mutator(spec) is not None
            assert has_mutator == (
                fault_class not in ("corrupt_disp", "bitflip")
            )
            if not has_mutator:
                assert mutate_image(spec, image) is not image
            else:
                assert mutate_image(spec, image) is image

    def test_retargeted_branch_follows_its_new_displacement(self, profiled):
        image, _ = profiled
        branch_idx = next(
            i for i, instr in enumerate(image.instructions)
            if instr.is_branch and image.target_index[i] is not None
        )
        instr = image.instructions[branch_idx]
        mutated = replace_instruction(
            image, branch_idx, instr.with_fields(imm=instr.imm + 1)
        )
        expected = image.index_of_addr.get(
            image.addresses[branch_idx] + 4 + (instr.imm + 1) * 4
        )
        assert mutated.target_index[branch_idx] == expected


class TestMiniCampaign:
    """The ISSUE's acceptance campaign, scaled to CI."""

    def test_guarded_classes_fully_contained(self, mini_report):
        classes = mini_report["summary"]["classes"]
        for name in MFI_GUARDED_CLASSES:
            counts = classes[name]
            assert counts["total"] > 0
            assert counts["containment_rate"] == 1.0, (
                f"{name}: {counts}"
            )
        guarded = mini_report["summary"]["guarded"]
        assert guarded["total"] > 0
        assert guarded["contained"] == guarded["total"]

    def test_no_false_positives_on_controls(self, mini_report):
        assert mini_report["summary"]["false_positives"] == 0
        for bench, control in mini_report["control"].items():
            assert not control["false_positive"], bench
            assert control["outputs_match"], bench

    def test_every_fault_has_a_classified_outcome(self, mini_report):
        assert len(mini_report["faults"]) == MINI.faults
        from repro.faults import OUTCOMES

        for record in mini_report["faults"]:
            assert record["outcome"] in OUTCOMES

    def test_same_seed_runs_are_bit_identical(self, mini_report):
        again = run_campaign(MINI)
        assert json.dumps(again, sort_keys=True) == \
            json.dumps(mini_report, sort_keys=True)

    def test_report_round_trips_through_disk(self, mini_report, tmp_path):
        path = str(tmp_path / "report.json")
        save_report(mini_report, path)
        assert load_report(path) == mini_report
        # Deterministic serialization: saving twice yields identical bytes.
        path2 = str(tmp_path / "report2.json")
        save_report(mini_report, path2)
        assert (tmp_path / "report.json").read_bytes() == \
            (tmp_path / "report2.json").read_bytes()

    def test_summary_renders(self, mini_report):
        text = render_summary(mini_report)
        assert "MFI fault-injection campaign" in text
        assert "oob_load" in text and "bitflip" in text
        assert "False positives" in text


class TestCheckpointResume:
    CONFIG = CampaignConfig(seed=7, faults=30, benchmarks=("bzip2",),
                            scale=0.05, checkpoint_every=5)

    def test_interrupt_then_resume_is_identical(self, tmp_path):
        reference = run_campaign(self.CONFIG)
        ckpt = str(tmp_path / "campaign.json")
        with pytest.raises(CampaignInterrupted):
            run_campaign(self.CONFIG, checkpoint_path=ckpt, stop_after=11)
        resumed = run_campaign(self.CONFIG, checkpoint_path=ckpt,
                               resume=True)
        assert json.dumps(resumed, sort_keys=True) == \
            json.dumps(reference, sort_keys=True)

    def test_checkpoint_config_mismatch_refuses(self, tmp_path):
        ckpt = str(tmp_path / "campaign.json")
        with pytest.raises(CampaignInterrupted):
            run_campaign(self.CONFIG, checkpoint_path=ckpt, stop_after=3)
        other = CampaignConfig(seed=8, faults=30, benchmarks=("bzip2",),
                               scale=0.05)
        with pytest.raises(CheckpointError):
            run_campaign(other, checkpoint_path=ckpt, resume=True)

    def test_resume_without_path_refuses(self):
        with pytest.raises(CheckpointError):
            run_campaign(self.CONFIG, resume=True)

    def test_validation(self):
        with pytest.raises(CampaignError):
            run_campaign(CampaignConfig(faults=0))
        with pytest.raises(CampaignError):
            run_campaign(CampaignConfig(classes=("meteor_strike",)))
        with pytest.raises(CampaignError):
            run_campaign(CampaignConfig(benchmarks=()))
        with pytest.raises(CampaignError):
            run_campaign(
                CampaignConfig(faults=1, benchmarks=("nonsense",))
            )
