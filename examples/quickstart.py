#!/usr/bin/env python
"""Quickstart: define a DISE production and watch it expand.

Reproduces the flavour of the paper's Figure 1 on a five-line program:
a production set written in the production language matches every store,
and the engine macro-expands each fetched store into a parameterized
replacement sequence.

Run:  python examples/quickstart.py
"""

from repro.core import DiseController, parse_productions
from repro.isa import disassemble
from repro.program import build_from_assembly
from repro.sim import Machine

# ----------------------------------------------------------------------
# 1. A tiny application, written in assembly.
# ----------------------------------------------------------------------
PROGRAM = """
main:
    ldah  a1, 1024(zero)      # a1 = data segment base (0x0400_0000)
    bis   zero, #7, t0
    stq   t0, 0(a1)           # will be expanded by DISE
    ldq   a0, 0(a1)
    out   a0
    halt
"""

# ----------------------------------------------------------------------
# 2. An ACF as DISE productions: count stores in $dr0 and trace the data
#    value into $dr3 before executing the store itself (T.INSN).
# ----------------------------------------------------------------------
PRODUCTIONS = """
# transparent ACF: applies to the unmodified binary above
P1: T.OPCLASS == store -> R1
R1:
    addq  $dr0, #1, $dr0      # persistent dedicated-register state
    bis   T.RT, T.RT, $dr3    # parameterized: T.RT = the store's data reg
    T.INSN                    # the original trigger
"""


def main():
    image = build_from_assembly(PROGRAM)
    controller = DiseController()
    controller.install(parse_productions(PRODUCTIONS, name="count-stores"))

    machine = Machine(image, controller=controller)
    result = machine.run()

    print("application output:", result.outputs)
    print(f"dynamic instructions: {result.instructions} "
          f"({result.app_instructions} fetched, "
          f"{result.expansions} expanded)")
    print("stores counted in $dr0:", result.final_regs[32])
    print("last stored value in $dr3:", result.final_regs[35])

    print("\nexecuted stream (PC:DISEPC):")
    for op in result.ops:
        in_replacement = op.disepc > 0 or op.expansion is not None
        marker = "  <- replacement" if in_replacement else ""
        print(f"  {op.pc:#010x}:{op.disepc}  {op.opcode.mnemonic}{marker}")


if __name__ == "__main__":
    main()
