#!/usr/bin/env python
"""Dynamic code (de)compression (Section 3.2 / Figure 4 / Figure 7).

Compresses a synthetic SPECint-profile benchmark with the full DISE
compressor (parameterized dictionary entries, PC-relative branch
compression), prints the dictionary the static half built, runs the
compressed binary under the decompression productions, and verifies the
execution is identical to the original.  Then compares against the
dedicated decoder-based decompressor baseline (Figure 7's feature chain).

Run:  python examples/decompression.py [benchmark]
"""

import sys

from repro.acf.compression import (
    DISE_OPTIONS,
    FIGURE7_VARIANTS,
    compress_image,
)
from repro.sim import run_program
from repro.workloads import generate_by_name


def main():
    bench = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    image = generate_by_name(bench, scale=0.4)
    plain = run_program(image, record_trace=False)

    print(f"benchmark: {bench}   text: {image.text_size} B "
          f"({image.instruction_count} instructions)")

    result = compress_image(image, DISE_OPTIONS)
    print(f"\nDISE compression: {result.instances} instances of "
          f"{result.dictionary_entries} dictionary entries")
    print(f"  text:        {result.compressed_text_bytes} B "
          f"({result.text_ratio:.1%} of original)")
    print(f"  +dictionary: {result.total_ratio:.1%} "
          f"({result.dictionary_bytes} B of RT contents)")

    print("\nfirst dictionary entries (note the T.P* parameters):")
    pset = result.production_set
    for tag in sorted(pset.replacements)[:4]:
        spec = pset.replacements[tag]
        print(f"  R{tag}:")
        for rinstr in spec.instrs:
            print(f"      {rinstr.render()}")

    run = result.installation().run(record_trace=False)
    print("\ndecompressed execution identical:",
          run.outputs == plain.outputs
          and run.final_memory == plain.final_memory)
    print(f"  codeword expansions: {run.expansions}")

    print("\nFigure 7 (top) feature chain for this benchmark:")
    print(f"  {'variant':12s} {'text':>7s} {'+dict':>7s}")
    for name, options in FIGURE7_VARIANTS:
        r = compress_image(image, options)
        print(f"  {name:12s} {r.text_ratio:6.1%} {r.total_ratio:6.1%}")


if __name__ == "__main__":
    main()
