#!/usr/bin/env python
"""Dynamic code specialization and fine-grain DSM (Sections 3.1-3.2).

Specialization: a loop multiplies by a value unknown until runtime.  The
static tool replaces the multiply with a codeword; when the value becomes
known, the runtime defines the codeword's replacement sequence — a shift,
or shift+shift+add — with a single controller call.  A software specializer
would rewrite 1 instruction into 3, retarget branches, and scavenge a
register; DISE does none of that.

DSM: every memory access is checked against a shared-range presence table,
entirely inside replacement sequences — "the appearance of hardware-
supported fine-grained DSM without custom hardware."

Run:  python examples/specialization_and_dsm.py
"""

from repro.acf.dsm import LINE_BYTES, attach_dsm, lines_present, remote_misses
from repro.acf.specialization import attach_specialization
from repro.isa.build import (
    Imm, addq, bis, bne, halt, ldq, mulq, out, stq, subq,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import parse_reg
from repro.program import ProgramBuilder
from repro.sim import run_program

A0, A1, T0, T1 = (parse_reg(r) for r in ("a0", "a1", "t0", "t1"))
ZERO = parse_reg("zero")


def build_multiply_loop(scale_value, iterations=6):
    b = ProgramBuilder()
    b.alloc_data("scale", 1, init=[scale_value])
    b.label("main")
    b.load_address(A1, "scale")
    b.emit(ldq(T1, 0, A1))              # runtime value
    b.emit(bis(ZERO, Imm(iterations), T0))
    b.emit(bis(ZERO, ZERO, A0))
    b.label("preheader")
    b.label("loop")
    b.emit(mulq(T0, T1, 5))             # i * scale
    b.emit(addq(A0, 5, A0))
    b.emit(subq(T0, Imm(1), T0))
    b.emit(bne(T0, "loop"))
    b.emit(out(A0))
    b.emit(halt())
    b.set_entry("main")
    return b.build()


def demo_specialization(value):
    image = build_multiply_loop(value)
    reference = run_program(image)

    installation, specializer = attach_specialization(image)
    machine = installation.make_machine()
    specializer.install(machine.controller)
    preheader = installation.image.symbols["preheader"]
    while machine.idx != preheader:
        machine.step()
    spec = specializer.bind_all(machine) or specializer
    bound = specializer.production_set.replacements[0]
    result = machine.run()

    muls = sum(1 for o in result.ops if o.opcode is Opcode.MULQ)
    print(f"  scale={value:4d}: sequence [{'; '.join(r.render() for r in bound.instrs)}]")
    print(f"             result identical: {result.outputs == reference.outputs}, "
          f"multiplies executed: {muls}")


def demo_dsm():
    b = ProgramBuilder()
    words = 32                          # 4 shared lines
    b.alloc_data("shared", words, init=list(range(words)))
    b.label("main")
    b.emit(bis(ZERO, Imm(2), T0))       # two passes
    b.label("outer")
    b.load_address(A1, "shared")
    b.emit(bis(ZERO, Imm(words), 5))
    b.label("inner")
    b.emit(ldq(A0, 0, A1))
    b.emit(addq(A0, Imm(1), A0))
    b.emit(stq(A0, 0, A1))
    b.emit(addq(A1, Imm(8), A1))
    b.emit(subq(5, Imm(1), 5))
    b.emit(bne(5, "inner"))
    b.emit(subq(T0, Imm(1), T0))
    b.emit(bne(T0, "outer"))
    b.emit(halt())
    b.set_entry("main")
    image = b.build()

    lo = image.data_base
    hi = lo + (words * 8 // LINE_BYTES) * LINE_BYTES
    installation = attach_dsm(image, lo, hi)
    result = installation.run()
    print(f"  shared range: {hi - lo} bytes "
          f"({(hi - lo) // LINE_BYTES} lines)")
    print(f"  memory accesses checked: {result.expansions}")
    print(f"  remote line fetches:     {remote_misses(result)} "
          "(first touch only; the second pass hits)")
    print(f"  lines resident at end:   {lines_present(result, installation)}")


if __name__ == "__main__":
    print("=== dynamic specialization: t = i * scale ===")
    for value in (8, 12, 7, 11):
        demo_specialization(value)
    print("\n=== fine-grain DSM presence checks ===")
    demo_dsm()
