#!/usr/bin/env python
"""Regenerate any of the paper's evaluation figures as a table.

Usage:
    python examples/reproduce_figures.py                 # list experiments
    python examples/reproduce_figures.py fig6_top        # one figure
    python examples/reproduce_figures.py all             # everything
    python examples/reproduce_figures.py fig7_ratio bzip2,mcf,gcc 0.5

The optional second argument selects benchmarks (comma-separated); the
third scales the workloads' dynamic length.  Full runs over all twelve
benchmarks take several minutes; `pytest benchmarks/ --benchmark-only`
drives the same code with shape assertions.
"""

import sys

from repro.harness import ALL_EXPERIMENTS, Suite, render_config_table


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        print("available experiments:")
        for name in ALL_EXPERIMENTS:
            print(f"  {name}")
        return

    which = sys.argv[1]
    benchmarks = None
    if len(sys.argv) > 2:
        benchmarks = tuple(sys.argv[2].split(","))
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 1.0

    names = list(ALL_EXPERIMENTS) if which == "all" else [which]
    suite = Suite(benchmarks=benchmarks, scale=scale)

    print(render_config_table())
    for name in names:
        print()
        print(ALL_EXPERIMENTS[name](suite).render())


if __name__ == "__main__":
    main()
