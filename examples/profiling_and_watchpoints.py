#!/usr/bin/env python
"""The paper's secondary transparent ACFs (Section 3.1).

* Store-address tracing: every store's effective address lands in an
  in-memory trace buffer, cursor in a dedicated register.
* Path profiling by bit tracing: conditional-branch outcomes accumulate in
  a dedicated path register; counters are bumped at function returns.
* Code assertions: a generalized memory watchpoint runs at pipeline speed
  instead of under a single-stepping debugger, and can be switched off with
  zero residual cost.
* Reference monitor: an instruction-budget policy the application cannot
  tamper with.

Run:  python examples/profiling_and_watchpoints.py
"""

from repro.acf.assertions import WATCH_FAULT_CODE, attach_watchpoint
from repro.acf.monitor import POLICY_FAULT_CODE, attach_monitor
from repro.acf.profiling import attach_path_profiling, read_path_counters
from repro.acf.tracing import attach_sat, read_trace_buffer
from repro.isa.opcodes import Opcode
from repro.sim import run_program
from repro.workloads import generate_by_name


def main():
    image = generate_by_name("mcf", scale=0.2)
    plain = run_program(image, record_trace=False)

    print("=== store-address tracing ===")
    sat = attach_sat(image)
    result = sat.run()
    addresses = read_trace_buffer(result, sat.buffer_base)
    print(f"  traced {len(addresses)} store addresses; first five: "
          f"{[hex(a) for a in addresses[:5]]}")
    print(f"  application unperturbed: {result.outputs == plain.outputs}")

    print("\n=== path profiling (bit tracing) ===")
    profiler = attach_path_profiling(image)
    result = profiler.run()
    counters = read_path_counters(result, profiler.table_base)
    top = sorted(counters.items(), key=lambda kv: -kv[1])[:5]
    print(f"  {len(counters)} distinct path tags, "
          f"{sum(counters.values())} path completions")
    print(f"  hottest (tag slot, count): {top}")

    print("\n=== code assertion: watch the first data word ===")
    lo = image.data_base
    watch = attach_watchpoint(image, lo, lo + 8)
    result = watch.run()
    fired = result.fault_code == WATCH_FAULT_CODE
    print(f"  watchpoint fired: {fired} "
          f"(fault {result.fault_code})")

    machine = watch.make_machine()
    machine.controller.set_active("watchpoint", False)
    inactive = machine.run()
    print(f"  deactivated: {inactive.expansions} expansions "
          "(inactive assertions are free)")

    print("\n=== reference monitor: budget multiply instructions ===")
    result = attach_monitor(image, budgeted=[Opcode.MULQ], budget=50).run()
    print(f"  budget of 50 mulq: fault={result.fault_code} "
          f"(policy code {POLICY_FAULT_CODE})")
    result = attach_monitor(image, budgeted=[Opcode.MULQ],
                            budget=10**9).run()
    print(f"  huge budget: fault={result.fault_code}, "
          f"outputs match: {result.outputs == plain.outputs}")


if __name__ == "__main__":
    main()
