#!/usr/bin/env python
"""Memory fault isolation (Section 3.1 / Figure 1 / Figure 6).

Builds a program with a wild out-of-segment store, then shows:

1. the unprotected run silently corrupts foreign memory;
2. DISE MFI (the 3-instruction formulation) catches the store before it
   executes;
3. the binary-rewriting baseline catches it too — at the cost of a much
   larger binary and more executed instructions;
4. the timing model's view of the three options (Figure 6 in miniature).

Run:  python examples/fault_isolation.py
"""

from repro.acf.mfi import MFI_FAULT_CODE, attach_mfi, rewrite_mfi
from repro.core.config import DiseConfig
from repro.isa.build import Imm, bis, halt, ldq, out, sll, stq
from repro.isa.registers import parse_reg
from repro.program import ProgramBuilder
from repro.sim import Machine, MachineConfig, run_program, simulate_trace

A0, A1, T0 = parse_reg("a0"), parse_reg("a1"), parse_reg("t0")
ZERO = parse_reg("zero")


def build_victim():
    b = ProgramBuilder()
    b.alloc_data("mine", 4, init=[10, 20, 30, 40])
    b.label("main")
    b.load_address(A1, "mine")
    b.emit(ldq(A0, 0, A1))           # legal
    b.emit(stq(A0, 8, A1))           # legal
    b.emit(bis(ZERO, Imm(5), T0))
    b.emit(sll(T0, Imm(26), T0))     # address in foreign segment 5
    b.emit(stq(A0, 0, T0))           # WILD STORE
    b.emit(out(A0))
    b.emit(halt())
    return b.build()


def main():
    image = build_victim()
    foreign = 5 << 26

    print("=== unprotected run ===")
    plain = run_program(image)
    print(f"  outputs: {plain.outputs}, fault: {plain.fault_code}")
    print(f"  foreign memory [{foreign:#x}]:",
          plain.final_memory.read(foreign), " <- corrupted!")

    print("\n=== DISE MFI (segment matching, 3 inserted instructions) ===")
    installation = attach_mfi(image, "dise3")
    guarded = installation.run()
    print(f"  fault code: {guarded.fault_code} "
          f"(MFI_FAULT_CODE={MFI_FAULT_CODE})")
    print(f"  foreign memory [{foreign:#x}]:",
          guarded.final_memory.read(foreign), " <- protected")
    print(f"  expansions: {guarded.expansions} "
          f"(every load/store/indirect jump checked)")

    print("\n=== binary-rewriting baseline ===")
    rewritten = rewrite_mfi(image)
    rw = rewritten.run()
    print(f"  fault code: {rw.fault_code}")
    print(f"  static size: {image.text_size} B -> "
          f"{rewritten.image.text_size} B "
          f"({rewritten.image.text_size / image.text_size:.2f}x)")
    print(f"  DISE image stays {installation.image.text_size} B "
          "(checks are inserted at fetch, not in the binary)")

    print("\n=== Figure 6 in miniature (normalized execution time) ===")
    base = simulate_trace(plain, MachineConfig(), warm_start=True).cycles
    rows = [("rewriting", rw, "free"),
            ("DISE3 +stall", guarded, "stall"),
            ("DISE3 +pipe", guarded, "pipe"),
            ("DISE3 free", guarded, "free")]
    for name, trace, placement in rows:
        config = MachineConfig(dise=DiseConfig(placement=placement))
        cycles = simulate_trace(trace, config, warm_start=True).cycles
        print(f"  {name:14s} {cycles / base:.3f}")


if __name__ == "__main__":
    main()
