#!/usr/bin/env python
"""Composing ACFs (Section 3.3 / Figure 5 / Figure 8).

Part 1 reproduces Figure 5 literally: nested and non-nested compositions of
memory fault isolation with store-address tracing, rendered in the
production language.

Part 2 composes the paper's two headline ACFs — transparent MFI nested into
aware decompression — the code-usage model the paper motivates: the server
ships a compressed, *unmodified* application; the client inlines its own
fault-isolation productions into the decompression dictionary.

Run:  python examples/composition.py
"""

from repro.acf.composition import COMPOSITION_SCHEMES, build_composition
from repro.acf.mfi import MFI_FAULT_CODE
from repro.core import merge_nonnested, nest, parse_productions
from repro.sim import run_program
from repro.workloads import generate_by_name

MFI = """
P1: T.OPCLASS == store -> R1
P2: T.OPCLASS == load  -> R1
R1:
    srl   T.RS, #26, $dr1
    xor   $dr1, $dr2, $dr1
    bne   $dr1, @0x400100
    T.INSN
"""

SAT = """
P3: T.OPCLASS == store -> R1
R1:
    lda   $dr4, T.IMM(T.RS)
    stq   $dr4, 0($dr5)
    lda   $dr5, 8($dr5)
    T.INSN
"""


def figure5():
    mfi = parse_productions(MFI, name="mfi", scope="kernel")
    sat = parse_productions(SAT, name="sat")

    print("=" * 64)
    print("Figure 5: nested composition — fault-isolate traced code")
    print("=" * 64)
    print(nest(inner=sat, outer=mfi, name="mfi(sat)").render())

    print()
    print("=" * 64)
    print("Figure 5: non-nested merge — trace and isolate, but do not")
    print("isolate the tracing stores themselves")
    print("=" * 64)
    print(merge_nonnested(sat, mfi).render())


def figure8():
    print()
    print("=" * 64)
    print("Decompression + MFI on a benchmark (Figure 8's three schemes)")
    print("=" * 64)
    image = generate_by_name("parser", scale=0.3)
    plain = run_program(image, record_trace=False)
    print(f"original text: {image.text_size} B")
    for scheme in COMPOSITION_SCHEMES:
        result, installation = build_composition(image, scheme)
        run = installation.run(record_trace=False)
        ok = run.outputs == plain.outputs and run.fault_code is None
        print(f"  {scheme:18s} text {result.compressed_text_bytes:7d} B  "
              f"dict {result.dictionary_bytes:6d} B  "
              f"equivalent: {ok}")

    # And the security property survives: a composed dictionary still
    # fault-isolates the *decompressed* instructions.
    result, installation = build_composition(image, "dise+dise")
    pset = installation.production_sets[0]
    composed = next(
        spec for spec in pset.replacements.values() if spec.composed_on_fill
    )
    print("\none composed dictionary entry (MFI inlined around the "
          "decompressed memory ops):")
    for rinstr in composed.instrs:
        print(f"    {rinstr.render()}")


if __name__ == "__main__":
    figure5()
    figure8()
